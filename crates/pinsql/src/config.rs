//! PinSQL configuration: the paper's hyper-parameters and the ablation
//! switchboard used by the Fig. 6 study.

use serde::{Deserialize, Serialize};

/// Which individual-active-session estimator to use (the Table III
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// `Estimate by RT`: per-second total response time, in seconds, as a
    /// session proxy.
    ByRt,
    /// `Estimate w/o buckets`: expected activity over the whole second.
    NoBuckets,
    /// `Estimate (K)`: §IV-C bucket localization of the probe instant.
    Buckets,
}

/// Component toggles for the Fig. 6 ablation study. All `false` = full
/// PinSQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Ablation {
    /// Replace the estimated individual active session with the aggregated
    /// response-time metric (PinSQL w/o Estimate Session).
    pub no_estimate_session: bool,
    /// Drop the trend-level score (PinSQL w/o Trend-level Score).
    pub no_trend_level: bool,
    /// Drop the scale-level score (PinSQL w/o Scale-level Score).
    pub no_scale_level: bool,
    /// Drop the scale-trend-level score (PinSQL w/o Trend-scale-level).
    pub no_scale_trend_level: bool,
    /// Replace the adaptive α/β weights with the constant 1
    /// (PinSQL w/o Weighted Final Score).
    pub no_weighted_final: bool,
    /// Always select exactly the top-1 cluster
    /// (PinSQL w/o Cumulative Threshold).
    pub no_cumulative_threshold: bool,
    /// Rank clusters by Top-RT instead of H-SQL impact
    /// (PinSQL w/o Direct Cause SQL Ranking).
    pub no_direct_cause_ranking: bool,
    /// Skip history trend verification
    /// (PinSQL w/o History Trend Verification).
    pub no_history_verification: bool,
}

/// All tunables, with the defaults of §VIII-A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinSqlConfig {
    /// Look-back before the anomaly, seconds (paper: 30 min).
    pub delta_s: i64,
    /// Sigmoid smooth factor `k_s` for the trend-level weights.
    pub ks: f64,
    /// Clustering correlation threshold `τ`.
    pub tau: f64,
    /// Max clusters examined by the cumulative threshold, `K_c`.
    pub kc: usize,
    /// Cumulative correlation threshold `τ_c`.
    pub tau_c: f64,
    /// Number of sub-second buckets `K` for session estimation.
    pub buckets_k: usize,
    /// Which estimator variant to run.
    pub estimator: EstimatorKind,
    /// Tukey fence multiplier for history verification.
    pub tukey_k: f64,
    /// Days back to verify against (paper: 1, 3, 7).
    pub history_days: Vec<u32>,
    /// Worker threads for the parallel hot paths (clustering, session
    /// estimation, H-SQL scoring): `0` = all available cores, `1` =
    /// serial. Results are identical for every value — parallelism only
    /// fans out independent (i, j)/template units with a deterministic
    /// merge order.
    #[serde(default)]
    pub parallelism: usize,
    /// Minimum final R-SQL score for a template to be *reported* as a root
    /// cause (the false-positive guard). The full ranking is always kept
    /// for Hits@k evaluation; this threshold only gates
    /// `Diagnosis::reported_rsqls`, so a negative case — where nothing
    /// survives history verification or every candidate correlates weakly —
    /// reports an empty set instead of its least-bad candidate.
    #[serde(default = "default_rsql_score_min")]
    pub rsql_score_min: f64,
    /// Ablation switches (all off for full PinSQL).
    pub ablation: Ablation,
}

impl Default for PinSqlConfig {
    fn default() -> Self {
        Self {
            delta_s: 1800,
            ks: 30.0,
            tau: 0.8,
            kc: 5,
            tau_c: 0.95,
            buckets_k: 10,
            estimator: EstimatorKind::Buckets,
            tukey_k: 1.5,
            history_days: vec![1, 3, 7],
            parallelism: 0,
            rsql_score_min: default_rsql_score_min(),
            ablation: Ablation::default(),
        }
    }
}

fn default_rsql_score_min() -> f64 {
    0.35
}

impl PinSqlConfig {
    /// Builder-style ablation override.
    pub fn with_ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = ablation;
        self
    }

    /// Builder-style look-back override (scenarios use shorter windows
    /// than production's 30 minutes).
    pub fn with_delta_s(mut self, delta_s: i64) -> Self {
        self.delta_s = delta_s;
        self
    }

    /// Builder-style estimator override.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }

    /// Builder-style bucket-count override.
    pub fn with_buckets(mut self, k: usize) -> Self {
        self.buckets_k = k;
        self
    }

    /// Builder-style parallelism override (`0` = all cores, `1` = serial).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The resolved worker-thread count (`parallelism`, with `0` mapped to
    /// the machine's available cores).
    pub fn effective_parallelism(&self) -> usize {
        pinsql_timeseries::effective_parallelism(self.parallelism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PinSqlConfig::default();
        assert_eq!(c.delta_s, 1800);
        assert_eq!(c.ks, 30.0);
        assert_eq!(c.tau, 0.8);
        assert_eq!(c.kc, 5);
        assert_eq!(c.tau_c, 0.95);
        assert_eq!(c.buckets_k, 10);
        assert_eq!(c.history_days, vec![1, 3, 7]);
        assert_eq!(c.parallelism, 0, "default parallelism is all-cores (0)");
        assert_eq!(c.rsql_score_min, 0.35);
        assert_eq!(c.ablation, Ablation::default());
    }

    #[test]
    fn parallelism_builder_and_resolution() {
        let c = PinSqlConfig::default().with_parallelism(3);
        assert_eq!(c.parallelism, 3);
        assert_eq!(c.effective_parallelism(), 3);
        let auto = PinSqlConfig::default();
        assert!(auto.effective_parallelism() >= 1);
        assert_eq!(
            PinSqlConfig::default().with_parallelism(1).effective_parallelism(),
            1
        );
    }

    #[test]
    fn builders() {
        let c = PinSqlConfig::default()
            .with_delta_s(600)
            .with_estimator(EstimatorKind::ByRt)
            .with_buckets(5)
            .with_ablation(Ablation { no_trend_level: true, ..Default::default() });
        assert_eq!(c.delta_s, 600);
        assert_eq!(c.estimator, EstimatorKind::ByRt);
        assert_eq!(c.buckets_k, 5);
        assert!(c.ablation.no_trend_level);
    }
}
