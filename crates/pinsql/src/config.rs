//! PinSQL configuration: the paper's hyper-parameters and the ablation
//! switchboard used by the Fig. 6 study — plus the versioned-delta types
//! the resident fleet daemon pushes at runtime ([`ConfigEpoch`],
//! [`PinSqlDelta`]).

use pinsql_timeseries::CutKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Monotone version of a pushed configuration.
///
/// The fleet control plane tags every config push with an epoch; agents
/// accept a push only if its epoch is *strictly greater* than the epoch
/// they are running, so a delayed or replayed frame can never roll a
/// fleet back to stale settings. Epoch 0 is the cold-start configuration
/// (nothing has been pushed yet).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ConfigEpoch(pub u64);

impl ConfigEpoch {
    /// The cold-start epoch (no push applied).
    pub const INITIAL: ConfigEpoch = ConfigEpoch(0);

    /// The next epoch in sequence.
    pub fn next(self) -> Self {
        ConfigEpoch(self.0 + 1)
    }
}

impl fmt::Display for ConfigEpoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}", self.0)
    }
}

/// A sparse override of [`PinSqlConfig`] — what a config push carries.
///
/// Every field is optional; `None` keeps the running value. Deltas cover
/// the knobs that make sense to retune on a live fleet (detector and
/// reporting thresholds, cluster budgets, diagnosis parallelism); the
/// structural switches (estimator variant, ablations) stay cold-start
/// settings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PinSqlDelta {
    /// Clustering correlation threshold `τ`.
    pub tau: Option<f64>,
    /// Max clusters examined by the cumulative threshold, `K_c`.
    pub kc: Option<usize>,
    /// Cumulative correlation threshold `τ_c`.
    pub tau_c: Option<f64>,
    /// Tukey fence multiplier for history verification.
    pub tukey_k: Option<f64>,
    /// Minimum final R-SQL score for the reported set.
    pub rsql_score_min: Option<f64>,
    /// Worker threads for the parallel diagnosis hot paths.
    pub parallelism: Option<usize>,
    /// Window-cut assembly path (incremental running moments vs reference
    /// re-scan).
    pub cut: Option<CutKind>,
}

impl PinSqlDelta {
    /// True when the delta overrides nothing.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Applies every present override onto `cfg` in place.
    pub fn apply(&self, cfg: &mut PinSqlConfig) {
        if let Some(v) = self.tau {
            cfg.tau = v;
        }
        if let Some(v) = self.kc {
            cfg.kc = v;
        }
        if let Some(v) = self.tau_c {
            cfg.tau_c = v;
        }
        if let Some(v) = self.tukey_k {
            cfg.tukey_k = v;
        }
        if let Some(v) = self.rsql_score_min {
            cfg.rsql_score_min = v;
        }
        if let Some(v) = self.parallelism {
            cfg.parallelism = v;
        }
        if let Some(v) = self.cut {
            cfg.cut = v;
        }
    }
}

/// Which individual-active-session estimator to use (the Table III
/// variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// `Estimate by RT`: per-second total response time, in seconds, as a
    /// session proxy.
    ByRt,
    /// `Estimate w/o buckets`: expected activity over the whole second.
    NoBuckets,
    /// `Estimate (K)`: §IV-C bucket localization of the probe instant.
    Buckets,
}

/// Component toggles for the Fig. 6 ablation study. All `false` = full
/// PinSQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Ablation {
    /// Replace the estimated individual active session with the aggregated
    /// response-time metric (PinSQL w/o Estimate Session).
    pub no_estimate_session: bool,
    /// Drop the trend-level score (PinSQL w/o Trend-level Score).
    pub no_trend_level: bool,
    /// Drop the scale-level score (PinSQL w/o Scale-level Score).
    pub no_scale_level: bool,
    /// Drop the scale-trend-level score (PinSQL w/o Trend-scale-level).
    pub no_scale_trend_level: bool,
    /// Replace the adaptive α/β weights with the constant 1
    /// (PinSQL w/o Weighted Final Score).
    pub no_weighted_final: bool,
    /// Always select exactly the top-1 cluster
    /// (PinSQL w/o Cumulative Threshold).
    pub no_cumulative_threshold: bool,
    /// Rank clusters by Top-RT instead of H-SQL impact
    /// (PinSQL w/o Direct Cause SQL Ranking).
    pub no_direct_cause_ranking: bool,
    /// Skip history trend verification
    /// (PinSQL w/o History Trend Verification).
    pub no_history_verification: bool,
}

/// All tunables, with the defaults of §VIII-A.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinSqlConfig {
    /// Look-back before the anomaly, seconds (paper: 30 min).
    pub delta_s: i64,
    /// Sigmoid smooth factor `k_s` for the trend-level weights.
    pub ks: f64,
    /// Clustering correlation threshold `τ`.
    pub tau: f64,
    /// Max clusters examined by the cumulative threshold, `K_c`.
    pub kc: usize,
    /// Cumulative correlation threshold `τ_c`.
    pub tau_c: f64,
    /// Number of sub-second buckets `K` for session estimation.
    pub buckets_k: usize,
    /// Which estimator variant to run.
    pub estimator: EstimatorKind,
    /// Tukey fence multiplier for history verification.
    pub tukey_k: f64,
    /// Days back to verify against (paper: 1, 3, 7).
    pub history_days: Vec<u32>,
    /// Worker threads for the parallel hot paths (clustering, session
    /// estimation, H-SQL scoring): `0` = all available cores, `1` =
    /// serial. Results are identical for every value — parallelism only
    /// fans out independent (i, j)/template units with a deterministic
    /// merge order.
    #[serde(default)]
    pub parallelism: usize,
    /// Minimum final R-SQL score for a template to be *reported* as a root
    /// cause (the false-positive guard). The full ranking is always kept
    /// for Hits@k evaluation; this threshold only gates
    /// `Diagnosis::reported_rsqls`, so a negative case — where nothing
    /// survives history verification or every candidate correlates weakly —
    /// reports an empty set instead of its least-bad candidate.
    #[serde(default = "default_rsql_score_min")]
    pub rsql_score_min: f64,
    /// How a window cut assembles the per-template minute trends the
    /// clustering consumes: [`CutKind::Incremental`] (the default) reuses
    /// rows precomputed from running ingest-time moments when the case
    /// carries them; [`CutKind::Reference`] always re-derives them from the
    /// raw series. Both produce bit-identical diagnoses — the knob trades
    /// per-cut recompute cost only.
    #[serde(default)]
    pub cut: CutKind,
    /// Ablation switches (all off for full PinSQL).
    pub ablation: Ablation,
}

impl Default for PinSqlConfig {
    fn default() -> Self {
        Self {
            delta_s: 1800,
            ks: 30.0,
            tau: 0.8,
            kc: 5,
            tau_c: 0.95,
            buckets_k: 10,
            estimator: EstimatorKind::Buckets,
            tukey_k: 1.5,
            history_days: vec![1, 3, 7],
            parallelism: 0,
            rsql_score_min: default_rsql_score_min(),
            cut: CutKind::default(),
            ablation: Ablation::default(),
        }
    }
}

fn default_rsql_score_min() -> f64 {
    0.35
}

impl PinSqlConfig {
    /// Builder-style ablation override.
    pub fn with_ablation(mut self, ablation: Ablation) -> Self {
        self.ablation = ablation;
        self
    }

    /// Builder-style look-back override (scenarios use shorter windows
    /// than production's 30 minutes).
    pub fn with_delta_s(mut self, delta_s: i64) -> Self {
        self.delta_s = delta_s;
        self
    }

    /// Builder-style estimator override.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.estimator = estimator;
        self
    }

    /// Builder-style bucket-count override.
    pub fn with_buckets(mut self, k: usize) -> Self {
        self.buckets_k = k;
        self
    }

    /// Builder-style parallelism override (`0` = all cores, `1` = serial).
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Builder-style cut-path override.
    pub fn with_cut(mut self, cut: CutKind) -> Self {
        self.cut = cut;
        self
    }

    /// The resolved worker-thread count (`parallelism`, with `0` mapped to
    /// the machine's available cores).
    pub fn effective_parallelism(&self) -> usize {
        pinsql_timeseries::effective_parallelism(self.parallelism)
    }
}

/// Sizing policy for the cross-process ingest transport (the `PEVT` wire
/// between a telemetry source and a daemon-hosting agent).
///
/// These are deployment knobs, not diagnosis knobs: any policy yields the
/// same diagnoses (the equivalence suite pins that); the policy only
/// trades memory bound against batching efficiency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportPolicy {
    /// Events the sink will buffer per connection before withholding
    /// credits — the hard per-connection memory bound and the total credit
    /// pool a source draws on.
    pub queue_capacity: usize,
    /// Events a source packs into one `Batch` frame (the last frame of a
    /// stream may be shorter).
    pub batch_events: usize,
    /// Largest frame either endpoint will accept on the byte stream;
    /// larger length prefixes are a torn/hostile stream, not a read.
    pub max_frame_bytes: usize,
}

impl Default for TransportPolicy {
    fn default() -> Self {
        Self { queue_capacity: 8192, batch_events: 256, max_frame_bytes: 1 << 22 }
    }
}

impl TransportPolicy {
    /// Builder-style queue-capacity override.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Builder-style batch-size override.
    pub fn with_batch_events(mut self, batch_events: usize) -> Self {
        self.batch_events = batch_events;
        self
    }

    /// A policy is usable only if a full batch fits inside the credit
    /// window — otherwise a compliant source could block forever waiting
    /// for credits the sink can never grant.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_events == 0 {
            return Err("batch_events must be at least 1".into());
        }
        if self.queue_capacity < self.batch_events {
            return Err(format!(
                "queue_capacity {} cannot admit one batch of {} events",
                self.queue_capacity, self.batch_events
            ));
        }
        if self.max_frame_bytes < 64 {
            return Err(format!("max_frame_bytes {} below minimum frame size", self.max_frame_bytes));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PinSqlConfig::default();
        assert_eq!(c.delta_s, 1800);
        assert_eq!(c.ks, 30.0);
        assert_eq!(c.tau, 0.8);
        assert_eq!(c.kc, 5);
        assert_eq!(c.tau_c, 0.95);
        assert_eq!(c.buckets_k, 10);
        assert_eq!(c.history_days, vec![1, 3, 7]);
        assert_eq!(c.parallelism, 0, "default parallelism is all-cores (0)");
        assert_eq!(c.rsql_score_min, 0.35);
        assert_eq!(c.cut, CutKind::Incremental, "incremental cut is the default");
        assert_eq!(c.ablation, Ablation::default());
    }

    #[test]
    fn parallelism_builder_and_resolution() {
        let c = PinSqlConfig::default().with_parallelism(3);
        assert_eq!(c.parallelism, 3);
        assert_eq!(c.effective_parallelism(), 3);
        let auto = PinSqlConfig::default();
        assert!(auto.effective_parallelism() >= 1);
        assert_eq!(
            PinSqlConfig::default().with_parallelism(1).effective_parallelism(),
            1
        );
    }

    #[test]
    fn epochs_are_ordered_and_display() {
        let e0 = ConfigEpoch::INITIAL;
        let e1 = e0.next();
        assert!(e1 > e0);
        assert_eq!(e1, ConfigEpoch(1));
        assert_eq!(e1.to_string(), "epoch 1");
        assert_eq!(ConfigEpoch::default(), e0);
        let json = serde_json::to_string(&e1).unwrap();
        assert_eq!(serde_json::from_str::<ConfigEpoch>(&json).unwrap(), e1);
    }

    #[test]
    fn delta_applies_only_present_fields() {
        let base = PinSqlConfig::default();

        let empty = PinSqlDelta::default();
        assert!(empty.is_empty());
        let mut cfg = base.clone();
        empty.apply(&mut cfg);
        assert_eq!(cfg, base, "empty delta is a no-op");

        let delta = PinSqlDelta {
            tau: Some(0.9),
            rsql_score_min: Some(0.5),
            parallelism: Some(2),
            cut: Some(CutKind::Reference),
            ..PinSqlDelta::default()
        };
        assert!(!delta.is_empty());
        let mut cfg = base.clone();
        delta.apply(&mut cfg);
        assert_eq!(cfg.tau, 0.9);
        assert_eq!(cfg.rsql_score_min, 0.5);
        assert_eq!(cfg.parallelism, 2);
        assert_eq!(cfg.cut, CutKind::Reference);
        // Untouched knobs keep the base values.
        assert_eq!(cfg.kc, base.kc);
        assert_eq!(cfg.tau_c, base.tau_c);
        assert_eq!(cfg.tukey_k, base.tukey_k);
        assert_eq!(cfg.estimator, base.estimator);

        let json = serde_json::to_string(&delta).unwrap();
        assert_eq!(serde_json::from_str::<PinSqlDelta>(&json).unwrap(), delta);
    }

    #[test]
    fn transport_policy_defaults_and_validation() {
        let p = TransportPolicy::default();
        assert!(p.validate().is_ok());
        assert!(p.queue_capacity >= p.batch_events);
        assert!(TransportPolicy::default().with_batch_events(0).validate().is_err());
        assert!(TransportPolicy::default()
            .with_queue_capacity(1)
            .with_batch_events(2)
            .validate()
            .is_err());
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<TransportPolicy>(&json).unwrap(), p);
    }

    #[test]
    fn builders() {
        let c = PinSqlConfig::default()
            .with_delta_s(600)
            .with_estimator(EstimatorKind::ByRt)
            .with_buckets(5)
            .with_ablation(Ablation { no_trend_level: true, ..Default::default() });
        assert_eq!(c.delta_s, 600);
        assert_eq!(c.estimator, EstimatorKind::ByRt);
        assert_eq!(c.buckets_k, 5);
        assert!(c.ablation.no_trend_level);
    }
}
