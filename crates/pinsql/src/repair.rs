//! The Repairing Module (§VII): rule-configured actions on R-SQLs.
//!
//! Three actions are provided, mirroring the production system:
//!
//! * **SQL Throttling** — rate-limit (optionally kill) the R-SQL;
//! * **Query Optimization** — hand the R-SQL to the optimizer (modelled as
//!   a cost-profile rewrite: the missing-index scan becomes an indexed
//!   access), gated by default on CPU/IO-related phenomena;
//! * **Instance AutoScale** — grow the instance (cores), for business
//!   growth that must not be throttled.
//!
//! Rules bind an anomaly type + template condition to an action (Fig. 5's
//! configuration); actions are only *executed* when `auto_execute` is on,
//! otherwise they are suggestions.

use crate::pipeline::Diagnosis;
use pinsql_collector::CaseData;
use pinsql_detect::AnomalyWindow;
use pinsql_obs::{Observer, Stage};
use pinsql_sqlkit::SqlId;
use pinsql_timeseries::tukey_fences;
use pinsql_workload::{CostProfile, SpecId, Workload};
use serde::{Deserialize, Serialize};

/// An executable repair action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepairAction {
    /// Rate-limit the template to `rate_fraction` of its traffic for
    /// `duration_s`; `kill` also terminates running statements.
    Throttle { rate_fraction: f64, duration_s: i64, kill: bool },
    /// Report the template to the query optimizer.
    OptimizeQuery,
    /// Upgrade the instance by the given core factor.
    AutoScale { cores_factor: f64 },
}

/// Template-level condition gating a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateCondition {
    /// Always applies.
    Any,
    /// The template's examined-rows series has an upward Tukey outlier
    /// inside the anomaly window (Fig. 5's example: optimize R-SQLs whose
    /// `#examined_rows` suddenly increases).
    ExaminedRowsSpike,
    /// The template's execution count has an upward Tukey outlier inside
    /// the anomaly window.
    ExecutionSpike,
}

/// One configuration rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairRule {
    /// Anomaly type this rule reacts to (`"*"` matches all).
    pub anomaly_type: String,
    pub condition: TemplateCondition,
    pub action: RepairAction,
    /// Execute automatically (vs. suggest only).
    pub auto_execute: bool,
}

/// The rule table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairConfig {
    pub rules: Vec<RepairRule>,
    /// How many top R-SQLs each rule considers.
    pub top_k: usize,
    /// Tukey multiplier for the spike conditions.
    pub tukey_k: f64,
    /// Absolute floor for `ExaminedRowsSpike`: the anomaly-window mean
    /// examined rows *per execution* must exceed this for the statement to
    /// be worth optimizing (the paper's category 2 is about "the large
    /// number of examined rows" — a point write touching 3 rows is not an
    /// optimizer target no matter how new it is).
    pub min_examined_rows: f64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        // Paper default: throttle first, then query optimization; query
        // optimization executes only for CPU/IO-related phenomena.
        Self {
            rules: vec![
                RepairRule {
                    anomaly_type: "active_session_anomaly".into(),
                    condition: TemplateCondition::ExecutionSpike,
                    action: RepairAction::Throttle {
                        rate_fraction: 0.1,
                        duration_s: 600,
                        kill: false,
                    },
                    auto_execute: false,
                },
                RepairRule {
                    anomaly_type: "cpu_usage_anomaly".into(),
                    condition: TemplateCondition::ExaminedRowsSpike,
                    action: RepairAction::OptimizeQuery,
                    auto_execute: false,
                },
                RepairRule {
                    anomaly_type: "iops_usage_anomaly".into(),
                    condition: TemplateCondition::ExaminedRowsSpike,
                    action: RepairAction::OptimizeQuery,
                    auto_execute: false,
                },
            ],
            top_k: 1,
            tukey_k: 1.5,
            min_examined_rows: 1000.0,
        }
    }
}

/// A suggested (possibly auto-executed) action on a template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuggestedAction {
    pub template: SqlId,
    pub label: String,
    pub action: RepairAction,
    pub auto_execute: bool,
}

/// [`suggest_actions`] bracketed by a [`Stage::Repair`] observability span.
///
/// The observer only watches — the returned actions are identical to the
/// unobserved call, and with [`NoopObserver`](pinsql_obs::NoopObserver)
/// the bracketing compiles away.
pub fn suggest_actions_observed<O: Observer>(
    diagnosis: &Diagnosis,
    case: &CaseData,
    window: &AnomalyWindow,
    anomaly_type: &str,
    cfg: &RepairConfig,
    obs: &O,
) -> Vec<SuggestedAction> {
    let n0 = if O::ENABLED { obs.now_ns() } else { 0 };
    let out = suggest_actions(diagnosis, case, window, anomaly_type, cfg);
    if O::ENABLED {
        obs.span(Stage::Repair, n0, obs.now_ns());
    }
    out
}

/// Applies the rule table to a diagnosis, producing actions on the top
/// R-SQLs.
pub fn suggest_actions(
    diagnosis: &Diagnosis,
    case: &CaseData,
    window: &AnomalyWindow,
    anomaly_type: &str,
    cfg: &RepairConfig,
) -> Vec<SuggestedAction> {
    let mut out = Vec::new();
    for rule in &cfg.rules {
        if rule.anomaly_type != "*" && rule.anomaly_type != anomaly_type {
            continue;
        }
        for r in diagnosis.rsqls.iter().take(cfg.top_k) {
            if !condition_holds(case, r.index, window, rule.condition, cfg) {
                continue;
            }
            out.push(SuggestedAction {
                template: r.id,
                label: r.label.clone(),
                action: rule.action,
                auto_execute: rule.auto_execute,
            });
        }
    }
    out
}

fn condition_holds(
    case: &CaseData,
    idx: usize,
    window: &AnomalyWindow,
    cond: TemplateCondition,
    cfg: &RepairConfig,
) -> bool {
    let tpl = &case.templates[idx].series;
    // Per-second series under test. ExaminedRowsSpike operates on the mean
    // rows *per execution* (a statement metric), not the aggregate sum —
    // otherwise every freshly appearing template would "spike".
    let series: Vec<f64> = match cond {
        TemplateCondition::Any => return true,
        TemplateCondition::ExaminedRowsSpike => tpl
            .examined_rows
            .iter()
            .zip(&tpl.execution_count)
            .map(|(&rows, &n)| if n > 0.0 { rows / n } else { 0.0 })
            .collect(),
        TemplateCondition::ExecutionSpike => tpl.execution_count.clone(),
    };
    let lo = ((window.anomaly_start - window.ts()).max(0) as usize).min(series.len());
    let hi = ((window.anomaly_end - window.ts()).max(0) as usize).min(series.len());
    let floor = match cond {
        TemplateCondition::ExaminedRowsSpike => cfg.min_examined_rows,
        _ => 0.0,
    };
    let mut baseline: Vec<f64> = series[..lo].to_vec();
    baseline.extend_from_slice(&series[hi..]);
    match tukey_fences(&baseline, cfg.tukey_k) {
        Some(f) => series[lo..hi].iter().any(|&x| f.is_upper_outlier(x) && x >= floor),
        None => false,
    }
}

// ---------------------------------------------------------------------
// Action appliers: turn an accepted action into a modified workload or
// instance configuration for the *next* simulation window. The eval crate
// uses these to replay the Fig. 8 storyline and measure Table II gains.
// ---------------------------------------------------------------------

/// Rate-limits a spec: every DAG call of the spec fires with probability
/// scaled by `fraction` (dropped requests model throttled/killed queries).
pub fn throttle_spec(workload: &Workload, spec: SpecId, fraction: f64) -> Workload {
    let mut w = workload.clone();
    for api in &mut w.dag.apis {
        for call in &mut api.queries {
            if call.target == spec {
                call.prob = (call.prob * fraction).clamp(0.0, 1.0);
            }
        }
    }
    w
}

/// The optimizer model: rewrites a poorly-written statement's cost profile
/// into an indexed access. Examined rows collapse to an index probe;
/// CPU/IO shrink proportionally. Lock footprints are preserved (indexes
/// don't change locking semantics).
pub fn optimize_cost(profile: &CostProfile) -> CostProfile {
    let mut p = profile.clone();
    // An index probe examines a few dozen rows instead of the scan.
    let target_rows = p.examined_rows.min(40.0);
    let shrink = if p.examined_rows > 0.0 { target_rows / p.examined_rows } else { 1.0 };
    p.examined_rows = target_rows;
    // CPU/IO have a fixed per-statement floor plus a scan-proportional part.
    p.cpu_ms = 0.15 + (p.cpu_ms - 0.15).max(0.0) * shrink;
    p.io_ms = 0.1 + (p.io_ms - 0.1).max(0.0) * shrink;
    p
}

/// Applies [`optimize_cost`] to one spec of a workload.
pub fn optimize_spec(workload: &Workload, spec: SpecId) -> Workload {
    let mut w = workload.clone();
    w.specs[spec.0].cost = optimize_cost(&w.specs[spec.0].cost);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RankedTemplate;
    use crate::StageTimings;
    use pinsql_collector::aggregate_case;
    use pinsql_dbsim::probe::ProbeLog;
    use pinsql_dbsim::{InstanceMetrics, QueryRecord};
    use pinsql_workload::dag::{Api, Call};
    use pinsql_workload::{ApiDag, TableDef, TableId, TemplateSpec, TrafficPattern};

    fn mini_case() -> (CaseData, AnomalyWindow) {
        let spec = TemplateSpec::new(
            "SELECT * FROM big WHERE note LIKE 'x'",
            CostProfile::poor_scan(TableId(0), 10_000.0),
            "scanner",
        );
        let n = 120usize;
        let mut log = Vec::new();
        // A freshly deployed scanner: absent before the anomaly, then ten
        // 10k-row executions per second — the Fig. 5 configuration's
        // "#examined_rows sudden increase" per statement.
        for t in 0..n as i64 {
            let k = if (60..90).contains(&t) { 10 } else { 0 };
            for j in 0..k {
                log.push(QueryRecord {
                    spec: SpecId(0),
                    start_ms: t as f64 * 1000.0 + j as f64 * 90.0,
                    response_ms: 100.0,
                    examined_rows: 10_000,
                });
            }
        }
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: vec![1.0; n],
            cpu_usage: vec![0.5; n],
            iops_usage: vec![0.1; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![0.0; n],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&log, &[spec], &metrics, 0, n as i64);
        let window = AnomalyWindow { anomaly_start: 60, anomaly_end: 90, delta_s: 60 };
        (case, window)
    }

    fn diag_for(case: &CaseData) -> Diagnosis {
        let tpl = &case.templates[0];
        let entry = RankedTemplate {
            index: 0,
            id: tpl.id,
            label: "scanner".into(),
            score: 0.9,
        };
        Diagnosis {
            hsqls: vec![entry.clone()],
            rsqls: vec![entry.clone()],
            reported_rsqls: vec![entry],
            n_verified: 1,
            n_clusters: 1,
            selected_clusters: 1,
            timings: StageTimings::default(),
        }
    }

    #[test]
    fn cpu_anomaly_with_row_spike_suggests_optimization() {
        let (case, window) = mini_case();
        let d = diag_for(&case);
        let actions =
            suggest_actions(&d, &case, &window, "cpu_usage_anomaly", &RepairConfig::default());
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].action, RepairAction::OptimizeQuery);
        assert!(!actions[0].auto_execute);
    }

    #[test]
    fn session_anomaly_with_execution_spike_suggests_throttle() {
        let (case, window) = mini_case();
        let d = diag_for(&case);
        let actions = suggest_actions(
            &d,
            &case,
            &window,
            "active_session_anomaly",
            &RepairConfig::default(),
        );
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0].action, RepairAction::Throttle { .. }));
    }

    #[test]
    fn unrelated_anomaly_type_produces_nothing() {
        let (case, window) = mini_case();
        let d = diag_for(&case);
        let actions =
            suggest_actions(&d, &case, &window, "memory_anomaly", &RepairConfig::default());
        assert!(actions.is_empty());
    }

    #[test]
    fn wildcard_rule_matches_everything() {
        let (case, window) = mini_case();
        let d = diag_for(&case);
        let cfg = RepairConfig {
            rules: vec![RepairRule {
                anomaly_type: "*".into(),
                condition: TemplateCondition::Any,
                action: RepairAction::AutoScale { cores_factor: 2.0 },
                auto_execute: true,
            }],
            top_k: 1,
            tukey_k: 1.5,
            min_examined_rows: 1000.0,
        };
        let actions = suggest_actions(&d, &case, &window, "whatever", &cfg);
        assert_eq!(actions.len(), 1);
        assert!(actions[0].auto_execute);
    }

    #[test]
    fn optimize_cost_collapses_scans() {
        let p = CostProfile::poor_scan(TableId(0), 100_000.0);
        let o = optimize_cost(&p);
        assert!(o.examined_rows <= 40.0);
        assert!(o.cpu_ms < p.cpu_ms * 0.02, "cpu {} -> {}", p.cpu_ms, o.cpu_ms);
        assert!(o.io_ms < p.io_ms);
        assert_eq!(o.lock, p.lock);
        // A cheap statement barely changes.
        let cheap = CostProfile::point_read(TableId(0));
        let oc = optimize_cost(&cheap);
        assert!((oc.cpu_ms - cheap.cpu_ms).abs() < 0.2);
    }

    #[test]
    fn throttle_spec_scales_dag_probabilities() {
        let spec = TemplateSpec::new(
            "SELECT 1 FROM t WHERE a = 1",
            CostProfile::point_read(TableId(0)),
            "x",
        );
        let mut dag = ApiDag::default();
        let api = dag.push(Api::named("a").query(Call::times(SpecId(0), 4)));
        let w = Workload {
            tables: vec![TableDef::new("t", 100, 4)],
            specs: vec![spec],
            dag,
            roots: vec![(api, TrafficPattern::steady(5.0))],
        };
        let throttled = throttle_spec(&w, SpecId(0), 0.1);
        assert!((throttled.dag.apis[0].queries[0].prob - 0.1).abs() < 1e-12);
        // Original untouched.
        assert_eq!(w.dag.apis[0].queries[0].prob, 1.0);
        let rates = throttled.expected_spec_rates(0);
        assert!((rates[0] - 5.0 * 4.0 * 0.1).abs() < 1e-9);
    }

    #[test]
    fn optimize_spec_replaces_profile() {
        let spec = TemplateSpec::new(
            "SELECT * FROM big WHERE x LIKE 'y'",
            CostProfile::poor_scan(TableId(0), 50_000.0),
            "x",
        );
        let w = Workload {
            tables: vec![TableDef::new("big", 100, 4)],
            specs: vec![spec],
            dag: ApiDag::default(),
            roots: vec![],
        };
        let o = optimize_spec(&w, SpecId(0));
        assert!(o.specs[0].cost.examined_rows <= 40.0);
        assert!(w.specs[0].cost.examined_rows > 1000.0);
    }
}
