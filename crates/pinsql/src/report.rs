//! Human-readable diagnosis reports.
//!
//! The production system surfaces its conclusions in the DAS console; this
//! module renders a [`Diagnosis`] (plus the case it came from) into the
//! text a DBA would read: the anomaly window, the top H-SQLs and R-SQLs
//! with their statements and key statistics, and any suggested repair
//! actions.

use crate::pipeline::Diagnosis;
use crate::repair::SuggestedAction;
use pinsql_collector::CaseData;
use pinsql_detect::AnomalyWindow;
use std::fmt::Write as _;

/// Options controlling report size.
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// How many H-SQLs / R-SQLs to show.
    pub top_k: usize,
    /// Truncate statement text to this many characters.
    pub max_sql_chars: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self { top_k: 5, max_sql_chars: 100 }
    }
}

/// Renders the diagnosis as a plain-text report.
pub fn render_report(
    case: &CaseData,
    window: &AnomalyWindow,
    diagnosis: &Diagnosis,
    actions: &[SuggestedAction],
    opts: &ReportOptions,
) -> String {
    let mut out = String::with_capacity(2048);
    let _ = writeln!(out, "PinSQL diagnosis report");
    let _ = writeln!(out, "=======================");
    let _ = writeln!(
        out,
        "anomaly window : [{}, {}) s  (collection look-back {} s)",
        window.anomaly_start, window.anomaly_end, window.delta_s
    );
    let _ = writeln!(
        out,
        "case           : {} templates, {} queries, {} business clusters ({} selected)",
        case.templates.len(),
        case.records.len(),
        diagnosis.n_clusters,
        diagnosis.selected_clusters
    );
    let _ = writeln!(
        out,
        "analysis time  : {:.3} s (estimate {:.3} s, H-SQL {:.3} s, R-SQL {:.3} s)",
        diagnosis.timings.total_s,
        diagnosis.timings.estimate_s,
        diagnosis.timings.hsql_s,
        diagnosis.timings.cluster_s
    );

    let a_lo = (window.anomaly_start - window.ts()).max(0) as usize;
    let a_hi = ((window.anomaly_end - window.ts()).max(0) as usize).min(case.n_seconds());
    let describe = |out: &mut String, index: usize, score: f64| {
        let tpl = &case.templates[index];
        let info = case.catalog.get(tpl.id);
        let execs: f64 = tpl.series.execution_count[a_lo..a_hi.max(a_lo)].iter().sum();
        let rt: f64 = tpl.series.total_rt_ms[a_lo..a_hi.max(a_lo)].iter().sum();
        let mean_rt = if execs > 0.0 { rt / execs } else { 0.0 };
        let text = info.map(|i| i.text.as_str()).unwrap_or("<unknown>");
        let shown: String = if text.len() > opts.max_sql_chars {
            format!("{}…", &text[..opts.max_sql_chars])
        } else {
            text.to_string()
        };
        let _ = writeln!(
            out,
            "  [{}] score {:+.3}  {} exec, mean rt {:.1} ms",
            tpl.id.short(),
            score,
            execs as u64,
            mean_rt
        );
        let _ = writeln!(out, "        {shown}");
    };

    let _ = writeln!(out, "\nHigh-impact SQLs (direct causes of the session anomaly):");
    for r in diagnosis.hsqls.iter().take(opts.top_k) {
        describe(&mut out, r.index, r.score);
    }
    let _ = writeln!(out, "\nRoot-cause SQLs (start of the propagation chain):");
    for r in diagnosis.rsqls.iter().take(opts.top_k) {
        describe(&mut out, r.index, r.score);
    }

    if actions.is_empty() {
        let _ = writeln!(out, "\nNo repair actions suggested by the configured rules.");
    } else {
        let _ = writeln!(out, "\nSuggested repair actions:");
        for a in actions {
            let _ = writeln!(
                out,
                "  - {:?} on [{}] {}{}",
                a.action,
                a.template.short(),
                a.label,
                if a.auto_execute { "  (auto-execute)" } else { "  (needs approval)" }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EstimatorKind, PinSqlConfig};
    use crate::pipeline::PinSql;
    use crate::repair::{suggest_actions, RepairConfig};
    use pinsql_collector::{aggregate_case, HistoryStore};
    use pinsql_dbsim::probe::ProbeLog;
    use pinsql_dbsim::{InstanceMetrics, QueryRecord};
    use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};

    fn tiny_case() -> (CaseData, AnomalyWindow) {
        let spec = TemplateSpec::new(
            "SELECT long_column_name_a, long_column_name_b, long_column_name_c FROM some_rather_long_table_name WHERE note LIKE 'pattern'",
            CostProfile::poor_scan(TableId(0), 50_000.0),
            "scanner",
        );
        let n = 120usize;
        let mut log = Vec::new();
        for t in 0..n as i64 {
            let k = if t >= 60 { 8 } else { 0 };
            for j in 0..k {
                log.push(QueryRecord {
                    spec: SpecId(0),
                    start_ms: t as f64 * 1000.0 + j as f64 * 110.0,
                    response_ms: 200.0,
                    examined_rows: 50_000,
                });
            }
        }
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: (0..n).map(|t| if t >= 60 { 9.0 } else { 0.5 }).collect(),
            cpu_usage: vec![0.4; n],
            iops_usage: vec![0.2; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![0.0; n],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&log, &[spec], &metrics, 0, n as i64);
        let window = AnomalyWindow { anomaly_start: 60, anomaly_end: 120, delta_s: 60 };
        (case, window)
    }

    #[test]
    fn report_contains_the_essentials() {
        let (case, window) = tiny_case();
        let pinsql =
            PinSql::new(PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets));
        let d = pinsql.diagnose(&case, &window, &HistoryStore::new(), 1_000_000);
        let actions =
            suggest_actions(&d, &case, &window, "cpu_usage_anomaly", &RepairConfig::default());
        let report = render_report(&case, &window, &d, &actions, &ReportOptions::default());
        assert!(report.contains("PinSQL diagnosis report"));
        assert!(report.contains("anomaly window : [60, 120) s"));
        assert!(report.contains("Root-cause SQLs"));
        assert!(report.contains("High-impact SQLs"));
        assert!(report.contains("OptimizeQuery"), "{report}");
        // The long SQL is truncated with an ellipsis.
        assert!(report.contains("…"), "{report}");
        assert!(!report.contains("WHERE note LIKE ?"), "should have been truncated: {report}");
    }

    #[test]
    fn report_without_actions_says_so() {
        let (case, window) = tiny_case();
        let pinsql =
            PinSql::new(PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets));
        let d = pinsql.diagnose(&case, &window, &HistoryStore::new(), 1_000_000);
        let report = render_report(&case, &window, &d, &[], &ReportOptions::default());
        assert!(report.contains("No repair actions"));
    }

    #[test]
    fn top_k_limits_listing() {
        let (case, window) = tiny_case();
        let pinsql =
            PinSql::new(PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets));
        let d = pinsql.diagnose(&case, &window, &HistoryStore::new(), 1_000_000);
        let opts = ReportOptions { top_k: 0, max_sql_chars: 10 };
        let report = render_report(&case, &window, &d, &[], &opts);
        assert!(!report.contains("score"), "top_k=0 hides entries: {report}");
    }
}
