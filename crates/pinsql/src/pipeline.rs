//! The end-to-end PinSQL pipeline with per-stage timing.

use crate::config::PinSqlConfig;
use crate::hsql::rank_hsqls;
use crate::rsql::identify_rsqls;
use crate::session_estimate::estimate_sessions;
use pinsql_collector::{CaseData, HistoryStore};
use pinsql_detect::AnomalyWindow;
use pinsql_obs::{NoopObserver, Observer, Stage};
use pinsql_sqlkit::SqlId;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One entry of a ranked template list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedTemplate {
    /// Index into `case.templates`.
    pub index: usize,
    pub id: SqlId,
    /// Diagnostic label (first contributing spec).
    pub label: String,
    /// Ranking score (impact for H-SQLs, execution/session correlation for
    /// R-SQLs).
    pub score: f64,
}

/// Wall-clock seconds spent per stage (the Table I `Time` decomposition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    pub estimate_s: f64,
    pub hsql_s: f64,
    pub cluster_s: f64,
    pub total_s: f64,
    /// Resolved worker-thread count the diagnosis ran with (1 = serial),
    /// so timing rows are attributable to a parallelism level.
    #[serde(default)]
    pub parallelism: usize,
}

impl StageTimings {
    /// Merges per-case timings into a mean (for Table I rows). Empty input
    /// yields all-zero timings.
    ///
    /// Samples in one row are normally homogeneous in `parallelism` (a
    /// sweep fixes the level per batch); if a mixed batch slips through,
    /// the *maximum* is reported so the row is attributed to the widest
    /// fan-out that actually ran, rather than whatever sample happened to
    /// come first.
    pub fn mean_of(samples: &[StageTimings]) -> StageTimings {
        if samples.is_empty() {
            return StageTimings::default();
        }
        let n = samples.len() as f64;
        StageTimings {
            estimate_s: samples.iter().map(|s| s.estimate_s).sum::<f64>() / n,
            hsql_s: samples.iter().map(|s| s.hsql_s).sum::<f64>() / n,
            cluster_s: samples.iter().map(|s| s.cluster_s).sum::<f64>() / n,
            total_s: samples.iter().map(|s| s.total_s).sum::<f64>() / n,
            parallelism: samples.iter().map(|s| s.parallelism).max().unwrap_or_default(),
        }
    }
}

/// A complete diagnosis of one anomaly case.
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// High-impact SQLs, most impactful first.
    pub hsqls: Vec<RankedTemplate>,
    /// Root-cause SQLs, most likely first. Always the full ranking (for
    /// Hits@k evaluation), even when nothing would actually be reported.
    pub rsqls: Vec<RankedTemplate>,
    /// The R-SQLs PinSQL would *assert* as root causes: empty when history
    /// verification rejected every candidate, and filtered to scores of at
    /// least [`PinSqlConfig::rsql_score_min`] otherwise. This is the
    /// false-positive guard — on a no-anomaly window it stays empty even
    /// though `rsqls` still ranks whatever candidates exist.
    pub reported_rsqls: Vec<RankedTemplate>,
    /// Number of candidates surviving history verification.
    pub n_verified: usize,
    /// Number of business clusters found.
    pub n_clusters: usize,
    /// Number of top clusters kept by the cumulative threshold.
    pub selected_clusters: usize,
    pub timings: StageTimings,
}

/// The PinSQL diagnoser.
#[derive(Debug, Clone, Default)]
pub struct PinSql {
    pub cfg: PinSqlConfig,
}

impl PinSql {
    /// Creates a diagnoser with the given configuration.
    pub fn new(cfg: PinSqlConfig) -> Self {
        Self { cfg }
    }

    /// Diagnoses one anomaly case: estimates individual sessions, ranks
    /// H-SQLs, pinpoints R-SQLs.
    ///
    /// `minutes_origin` is the absolute minute index of `case.ts` in the
    /// history store's timeline.
    pub fn diagnose(
        &self,
        case: &CaseData,
        window: &AnomalyWindow,
        history: &HistoryStore,
        minutes_origin: i64,
    ) -> Diagnosis {
        self.diagnose_observed(case, window, history, minutes_origin, &NoopObserver)
    }

    /// [`diagnose`](Self::diagnose) with per-stage observability spans
    /// ([`Stage::SessionEstimate`], [`Stage::Hsql`], [`Stage::Rsql`]).
    ///
    /// The observer only watches: the returned `Diagnosis` is
    /// byte-identical whatever `O` is (the workspace `obs_equivalence`
    /// suite pins this), and with the default [`NoopObserver`] the
    /// instrumentation compiles to nothing.
    pub fn diagnose_observed<O: Observer>(
        &self,
        case: &CaseData,
        window: &AnomalyWindow,
        history: &HistoryStore,
        minutes_origin: i64,
        obs: &O,
    ) -> Diagnosis {
        let n0 = if O::ENABLED { obs.now_ns() } else { 0 };
        let t0 = Instant::now();
        let est = estimate_sessions(case, &self.cfg);
        let t1 = Instant::now();
        let n1 = if O::ENABLED {
            let n = obs.now_ns();
            obs.span(Stage::SessionEstimate, n0, n);
            n
        } else {
            0
        };
        let hsql = rank_hsqls(case, &est, window, &self.cfg);
        let t2 = Instant::now();
        let n2 = if O::ENABLED {
            let n = obs.now_ns();
            obs.span(Stage::Hsql, n1, n);
            n
        } else {
            0
        };
        let rsql = identify_rsqls(case, &est, &hsql, window, history, minutes_origin, &self.cfg);
        let t3 = Instant::now();
        if O::ENABLED {
            obs.span(Stage::Rsql, n2, obs.now_ns());
        }

        let to_ranked = |list: &[(usize, f64)]| -> Vec<RankedTemplate> {
            list.iter()
                .map(|&(index, score)| {
                    let tpl = &case.templates[index];
                    let label = case
                        .catalog
                        .get(tpl.id)
                        .map(|info| info.label.clone())
                        .unwrap_or_default();
                    RankedTemplate { index, id: tpl.id, label, score }
                })
                .collect()
        };

        let rsqls = to_ranked(&rsql.ranked);
        let reported_rsqls = if rsql.verified.is_empty() {
            Vec::new()
        } else {
            rsqls.iter().filter(|r| r.score >= self.cfg.rsql_score_min).cloned().collect()
        };

        Diagnosis {
            hsqls: to_ranked(&hsql.ranked),
            rsqls,
            reported_rsqls,
            n_verified: rsql.verified.len(),
            n_clusters: rsql.clusters.len(),
            selected_clusters: rsql.selected_clusters,
            timings: StageTimings {
                estimate_s: (t1 - t0).as_secs_f64(),
                hsql_s: (t2 - t1).as_secs_f64(),
                cluster_s: (t3 - t2).as_secs_f64(),
                total_s: (t3 - t0).as_secs_f64(),
                parallelism: self.cfg.effective_parallelism(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EstimatorKind;
    use pinsql_collector::aggregate_case;
    use pinsql_dbsim::probe::ProbeLog;
    use pinsql_dbsim::{InstanceMetrics, QueryRecord};
    use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};

    #[test]
    fn diagnose_produces_consistent_structures() {
        let c = CostProfile::point_read(TableId(0));
        let specs = vec![
            TemplateSpec::new("SELECT * FROM a WHERE x = 1", c.clone(), "a"),
            TemplateSpec::new("SELECT * FROM b WHERE x = 1", c, "b"),
        ];
        let n = 240usize;
        let mut log = Vec::new();
        let mut session = vec![2.0; n];
        for t in 0..n as i64 {
            let burst = (120..180).contains(&t);
            let count = if burst { 20 } else { 2 };
            for j in 0..count {
                log.push(QueryRecord {
                    spec: SpecId(0),
                    start_ms: t as f64 * 1000.0 + j as f64 * 45.0,
                    response_ms: if burst { 900.0 } else { 50.0 },
                    examined_rows: 1,
                });
            }
            log.push(QueryRecord {
                spec: SpecId(1),
                start_ms: t as f64 * 1000.0 + 500.0,
                response_ms: 40.0,
                examined_rows: 1,
            });
            if burst {
                session[t as usize] = 20.0;
            }
        }
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: session,
            cpu_usage: vec![0.2; n],
            iops_usage: vec![0.1; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![0.0; n],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&log, &specs, &metrics, 0, n as i64);
        let window = AnomalyWindow { anomaly_start: 120, anomaly_end: 180, delta_s: 120 };
        let pinsql = PinSql::new(
            PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets),
        );
        let d = pinsql.diagnose(&case, &window, &HistoryStore::new(), 1_000_000);

        assert_eq!(d.hsqls.len(), 2);
        assert!(!d.rsqls.is_empty());
        // The bursting template is both top H-SQL and top R-SQL here.
        let burst_id = case.catalog.id_of_spec(SpecId(0));
        assert_eq!(d.hsqls[0].id, burst_id);
        assert_eq!(d.rsqls[0].id, burst_id);
        assert_eq!(d.rsqls[0].label, "a");
        // The burst survives history verification (no history) and
        // correlates strongly, so it must also be *reported*.
        assert!(d.n_verified >= 1);
        assert_eq!(d.reported_rsqls.first().map(|r| r.id), Some(burst_id));
        assert!(d.n_clusters >= 1);
        assert!(d.selected_clusters >= 1);
        assert!(d.timings.total_s >= d.timings.estimate_s);
        assert!(d.timings.total_s > 0.0);
        assert!(d.timings.parallelism >= 1);
    }

    #[test]
    fn stage_timings_mean() {
        let a = StageTimings {
            estimate_s: 1.0,
            hsql_s: 2.0,
            cluster_s: 3.0,
            total_s: 6.0,
            parallelism: 4,
        };
        let b = StageTimings {
            estimate_s: 3.0,
            hsql_s: 4.0,
            cluster_s: 5.0,
            total_s: 12.0,
            parallelism: 4,
        };
        let m = StageTimings::mean_of(&[a, b]);
        assert_eq!(m.estimate_s, 2.0);
        assert_eq!(m.hsql_s, 3.0);
        assert_eq!(m.cluster_s, 4.0);
        assert_eq!(m.total_s, 9.0);
        assert_eq!(m.parallelism, 4);
        assert_eq!(StageTimings::mean_of(&[]), StageTimings::default());
    }

    #[test]
    fn stage_timings_mean_attributes_mixed_parallelism_to_the_max() {
        let serial = StageTimings { parallelism: 1, ..StageTimings::default() };
        let wide = StageTimings { parallelism: 8, ..StageTimings::default() };
        assert_eq!(StageTimings::mean_of(&[serial, wide]).parallelism, 8);
        assert_eq!(StageTimings::mean_of(&[wide, serial]).parallelism, 8);
    }
}
