//! Individual active-session estimation from query logs (§IV-C).
//!
//! A query `q` is active during `[t(q), t(q) + t_res(q))`. For a window
//! `p`, the probability that the `SHOW STATUS` snapshot observes `q` as
//! active is `P(observed(p, q)) = |p ∩ [t(q), t(q)+t_res(q))| / |p|`, and
//! the expected active session over `p` is the sum of those probabilities.
//!
//! The monitoring probe reports one number per second but takes it at an
//! *unknown instant* `t3 ∈ [t, t+1)`. The paper's trick: split the second
//! into `K` buckets, compute the expected session per bucket, and declare
//! the probe to have run in the bucket whose expectation is closest to the
//! reported value. Each template's individual session for that second is
//! then its expected activity *within the selected bucket*.
//!
//! Complexity: `O(records · K)` for the sub-second edges plus `O(1)` per
//! fully covered second (difference arrays), so minutes-long blocked
//! queries cost nothing per covered second.

use crate::config::{EstimatorKind, PinSqlConfig};
use pinsql_collector::CaseData;
use pinsql_dbsim::QueryRecord;
use pinsql_timeseries::par_map;

/// The estimator's output, aligned with `case.templates`.
#[derive(Debug, Clone)]
pub struct SessionEstimates {
    /// Window start (s).
    pub start: i64,
    /// Per-template estimated individual active session, one value per
    /// second of the window.
    pub per_template: Vec<Vec<f64>>,
    /// Selected bucket index per second (all zeros for `ByRt`/`NoBuckets`).
    pub selected_bucket: Vec<usize>,
    /// Estimated *instance* active session (sum over templates) — the
    /// quantity Table III compares against the probe ground truth.
    pub instance_estimate: Vec<f64>,
}

impl SessionEstimates {
    /// The estimated session series of template index `i`.
    pub fn of(&self, i: usize) -> &[f64] {
        &self.per_template[i]
    }
}

/// Estimates individual active sessions for every template of the case.
pub fn estimate_sessions(case: &CaseData, cfg: &PinSqlConfig) -> SessionEstimates {
    let kind =
        if cfg.ablation.no_estimate_session { EstimatorKind::ByRt } else { cfg.estimator };
    let parallelism = cfg.effective_parallelism();
    match kind {
        EstimatorKind::ByRt => estimate_by_rt(case),
        EstimatorKind::NoBuckets => estimate_with_buckets(case, 1, parallelism),
        EstimatorKind::Buckets => {
            estimate_with_buckets(case, cfg.buckets_k.max(1), parallelism)
        }
    }
}

/// `Estimate by RT`: per-second total response time (in seconds) as the
/// session proxy — the baseline the paper shows to correlate poorly.
fn estimate_by_rt(case: &CaseData) -> SessionEstimates {
    let n = case.n_seconds();
    let per_template: Vec<Vec<f64>> = case
        .templates
        .iter()
        .map(|t| t.series.total_rt_ms.iter().map(|&ms| ms / 1000.0).collect())
        .collect();
    let instance_estimate = sum_columns(&per_template, n);
    SessionEstimates {
        start: case.ts,
        per_template,
        selected_bucket: vec![0; n],
        instance_estimate,
    }
}

/// Bucketed estimation (`K = 1` reproduces the w/o-buckets variant: the
/// whole second is one bucket, so `P` is the query's expected activity over
/// the full second).
///
/// Pass 2 (per-template accumulation) fans out over templates with up to
/// `parallelism` workers; each template's series depends only on its own
/// records and the shared selected-bucket vector, so the output is
/// bit-identical for every parallelism level.
fn estimate_with_buckets(case: &CaseData, k: usize, parallelism: usize) -> SessionEstimates {
    let n = case.n_seconds();
    let ts_ms = case.ts as f64 * 1000.0;
    let bucket_ms = 1000.0 / k as f64;

    // Pass 1: expected instance session per (bucket, second).
    // `full[t]` counts queries covering second t entirely (same for every
    // bucket); `edges[k][t]` accumulates partial-coverage probabilities.
    let mut full_diff = vec![0.0f64; n + 1];
    let mut edges = vec![vec![0.0f64; n]; k];
    for rec in &case.records {
        accumulate_query(rec, ts_ms, n, bucket_ms, &mut full_diff, &mut edges, None);
    }
    let full = prefix_sum(&full_diff, n);

    // Select the bucket whose expectation best matches the probe value.
    let probe = case.instance_session();
    let mut selected_bucket = vec![0usize; n];
    if k > 1 {
        for t in 0..n {
            let target = probe.get(t).copied().unwrap_or(0.0);
            if !target.is_finite() {
                // A corrupted probe value cannot localize the instant;
                // keep bucket 0 rather than comparing against NaN.
                continue;
            }
            let mut best = 0usize;
            let mut best_err = f64::INFINITY;
            for (b, edge) in edges.iter().enumerate() {
                let est = full[t] + edge[t];
                let err = (target - est).abs();
                if err < best_err {
                    best_err = err;
                    best = b;
                }
            }
            selected_bucket[t] = best;
        }
    }

    // Pass 2: per-template sessions evaluated at the selected buckets.
    let per_template: Vec<Vec<f64>> =
        par_map(case.templates.len(), parallelism, |tpl_idx| {
            let tpl = &case.templates[tpl_idx];
            let mut tpl_full_diff = vec![0.0f64; n + 1];
            let mut tpl_edges = vec![vec![0.0f64; n]; k];
            for &ri in &tpl.record_idx {
                accumulate_query(
                    &case.records[ri as usize],
                    ts_ms,
                    n,
                    bucket_ms,
                    &mut tpl_full_diff,
                    &mut tpl_edges,
                    Some(&selected_bucket),
                );
            }
            let tpl_full = prefix_sum(&tpl_full_diff, n);
            (0..n).map(|t| tpl_full[t] + tpl_edges[selected_bucket[t]][t]).collect()
        });

    let instance_estimate = if k > 1 {
        // Evaluate the instance expectation at the selected buckets.
        (0..n).map(|t| full[t] + edges[selected_bucket[t]][t]).collect()
    } else {
        (0..n).map(|t| full[t] + edges[0][t]).collect()
    };

    SessionEstimates { start: case.ts, per_template, selected_bucket, instance_estimate }
}

/// Adds one query's activity to the difference array (fully covered
/// seconds) and the edge buckets (partially covered seconds).
///
/// When `only_buckets` is provided, edge contributions are computed only
/// for the per-second selected bucket (pass 2); otherwise for all buckets
/// (pass 1).
#[allow(clippy::too_many_arguments)]
fn accumulate_query(
    rec: &QueryRecord,
    ts_ms: f64,
    n: usize,
    bucket_ms: f64,
    full_diff: &mut [f64],
    edges: &mut [Vec<f64>],
    only_buckets: Option<&[usize]>,
) {
    let s = rec.start_ms;
    let e = rec.end_ms();
    // `!(e > s)` also rejects NaN endpoints from corrupted records, which
    // would otherwise poison the difference arrays via `floor() as usize`.
    if !(e > s) || !s.is_finite() || !e.is_finite() {
        return;
    }
    let end_ms = ts_ms + n as f64 * 1000.0;
    let s = s.max(ts_ms);
    let e = e.min(end_ms);
    if e <= s {
        return;
    }
    let sec_first = ((s - ts_ms) / 1000.0).floor() as usize;
    // Last second touched (inclusive); e is exclusive so back off an ulp.
    let sec_last = (((e - ts_ms) / 1000.0).ceil() as usize).saturating_sub(1).min(n - 1);

    // Fully covered seconds: [full_lo, full_hi).
    let full_lo = ((s - ts_ms) / 1000.0).ceil() as usize;
    let full_hi = ((e - ts_ms) / 1000.0).floor() as usize;
    if full_lo < full_hi {
        full_diff[full_lo] += 1.0;
        full_diff[full_hi] -= 1.0;
    }

    // Partially covered edge seconds: at most sec_first and sec_last.
    let mut handle_edge = |t: usize| {
        if t >= n {
            return;
        }
        // Skip if this second is fully covered (handled by the diff array).
        if t >= full_lo && t < full_hi {
            return;
        }
        let base = ts_ms + t as f64 * 1000.0;
        match only_buckets {
            Some(sel) => {
                let b = sel[t];
                let lo = base + b as f64 * bucket_ms;
                let hi = lo + bucket_ms;
                edges[b][t] += overlap(s, e, lo, hi) / bucket_ms;
            }
            None => {
                for (b, edge) in edges.iter_mut().enumerate() {
                    let lo = base + b as f64 * bucket_ms;
                    let hi = lo + bucket_ms;
                    edge[t] += overlap(s, e, lo, hi) / bucket_ms;
                }
            }
        }
    };
    handle_edge(sec_first);
    if sec_last != sec_first {
        handle_edge(sec_last);
    }
}

#[inline]
fn overlap(s: f64, e: f64, lo: f64, hi: f64) -> f64 {
    (e.min(hi) - s.max(lo)).max(0.0)
}

fn prefix_sum(diff: &[f64], n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &d in diff.iter().take(n) {
        acc += d;
        out.push(acc);
    }
    out
}

fn sum_columns(rows: &[Vec<f64>], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for row in rows {
        for (o, v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_collector::aggregate_case;
    use pinsql_dbsim::probe::{ProbeLog, ProbeSample};
    use pinsql_dbsim::InstanceMetrics;
    use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};

    fn specs2() -> Vec<TemplateSpec> {
        let c = CostProfile::point_read(TableId(0));
        vec![
            TemplateSpec::new("SELECT * FROM a WHERE x = 1", c.clone(), "a"),
            TemplateSpec::new("SELECT * FROM b WHERE x = 1", c, "b"),
        ]
    }

    fn metrics_with_probes(n: usize, probes: Vec<(i64, u32, f64)>) -> InstanceMetrics {
        InstanceMetrics {
            start_second: 0,
            active_session: {
                let mut v = vec![0.0; n];
                for &(s, val, _) in &probes {
                    v[s as usize] = val as f64;
                }
                v
            },
            cpu_usage: vec![0.0; n],
            iops_usage: vec![0.0; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![0.0; n],
            probes: ProbeLog {
                samples: probes
                    .into_iter()
                    .map(|(second, active_sessions, true_instant_ms)| ProbeSample {
                        second,
                        active_sessions,
                        true_instant_ms,
                    })
                    .collect(),
            },
        }
    }

    fn rec(spec: usize, start: f64, rt: f64) -> pinsql_dbsim::QueryRecord {
        pinsql_dbsim::QueryRecord {
            spec: SpecId(spec),
            start_ms: start,
            response_ms: rt,
            examined_rows: 1,
        }
    }

    fn cfg(kind: EstimatorKind, k: usize) -> PinSqlConfig {
        PinSqlConfig::default().with_estimator(kind).with_buckets(k)
    }

    #[test]
    fn by_rt_is_total_response_time_in_seconds() {
        let log = vec![rec(0, 100.0, 500.0), rec(0, 200.0, 500.0), rec(1, 1100.0, 250.0)];
        let case = aggregate_case(&log, &specs2(), &metrics_with_probes(3, vec![]), 0, 3);
        let est = estimate_sessions(&case, &cfg(EstimatorKind::ByRt, 10));
        // Templates sorted by SqlId; find which row is template "a".
        let a_idx = case
            .template_index(case.catalog.id_of_spec(SpecId(0)))
            .unwrap();
        assert!((est.per_template[a_idx][0] - 1.0).abs() < 1e-12);
        assert!((est.instance_estimate[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn no_buckets_matches_expected_activity() {
        // Query active [500, 1500): expected activity 0.5 in second 0 and
        // 0.5 in second 1.
        let log = vec![rec(0, 500.0, 1000.0)];
        let case = aggregate_case(&log, &specs2(), &metrics_with_probes(3, vec![]), 0, 3);
        let est = estimate_sessions(&case, &cfg(EstimatorKind::NoBuckets, 10));
        let a_idx = case.template_index(case.catalog.id_of_spec(SpecId(0))).unwrap();
        assert!((est.per_template[a_idx][0] - 0.5).abs() < 1e-9);
        assert!((est.per_template[a_idx][1] - 0.5).abs() < 1e-9);
        assert!((est.per_template[a_idx][2]).abs() < 1e-9);
    }

    #[test]
    fn long_query_counts_one_per_fully_covered_second() {
        let log = vec![rec(0, 0.0, 5000.0)];
        let case = aggregate_case(&log, &specs2(), &metrics_with_probes(6, vec![]), 0, 6);
        let est = estimate_sessions(&case, &cfg(EstimatorKind::NoBuckets, 1));
        let a_idx = case.template_index(case.catalog.id_of_spec(SpecId(0))).unwrap();
        for t in 0..5 {
            assert!((est.per_template[a_idx][t] - 1.0).abs() < 1e-9, "t={t}");
        }
        assert!(est.per_template[a_idx][5].abs() < 1e-9);
    }

    #[test]
    fn bucket_selection_recovers_probe_instant() {
        // Second 0: query active [0, 350). A probe at t3 = 0.32 s sees 1
        // active session; a probe later sees 0. With K = 10 the estimator
        // must pick a bucket consistent with the reported value.
        let log = vec![rec(0, 0.0, 350.0)];
        // Probe reported 1 at second 0 → buckets 0..3 fully covered (est 1)
        // are the best match.
        let case =
            aggregate_case(&log, &specs2(), &metrics_with_probes(1, vec![(0, 1, 320.0)]), 0, 1);
        let est = estimate_sessions(&case, &cfg(EstimatorKind::Buckets, 10));
        assert!(est.selected_bucket[0] < 4, "bucket {}", est.selected_bucket[0]);
        let a_idx = case.template_index(case.catalog.id_of_spec(SpecId(0))).unwrap();
        assert!((est.per_template[a_idx][0] - 1.0).abs() < 1e-9);

        // Same data but the probe reported 0 → a late bucket must win.
        let case0 =
            aggregate_case(&log, &specs2(), &metrics_with_probes(1, vec![(0, 0, 900.0)]), 0, 1);
        let est0 = estimate_sessions(&case0, &cfg(EstimatorKind::Buckets, 10));
        assert!(est0.selected_bucket[0] >= 4, "bucket {}", est0.selected_bucket[0]);
        assert!(est0.per_template[a_idx][0] < 0.6);
    }

    #[test]
    fn instance_estimate_is_sum_of_templates() {
        let log = vec![
            rec(0, 100.0, 700.0),
            rec(1, 300.0, 1400.0),
            rec(0, 1200.0, 100.0),
            rec(1, 1900.0, 2300.0),
        ];
        let case = aggregate_case(
            &log,
            &specs2(),
            &metrics_with_probes(5, vec![(0, 2, 500.0), (1, 1, 1500.0)]),
            0,
            5,
        );
        for kind in [EstimatorKind::ByRt, EstimatorKind::NoBuckets, EstimatorKind::Buckets] {
            let est = estimate_sessions(&case, &cfg(kind, 10));
            for t in 0..5 {
                let sum: f64 = est.per_template.iter().map(|row| row[t]).sum();
                assert!(
                    (sum - est.instance_estimate[t]).abs() < 1e-9,
                    "{kind:?} t={t}: {sum} vs {}",
                    est.instance_estimate[t]
                );
            }
        }
    }

    #[test]
    fn ablation_forces_rt_estimator() {
        let log = vec![rec(0, 0.0, 2000.0)];
        let case = aggregate_case(&log, &specs2(), &metrics_with_probes(2, vec![]), 0, 2);
        let mut cfg = cfg(EstimatorKind::Buckets, 10);
        cfg.ablation.no_estimate_session = true;
        let est = estimate_sessions(&case, &cfg);
        let a_idx = case.template_index(case.catalog.id_of_spec(SpecId(0))).unwrap();
        // RT estimator attributes the whole 2 s to the arrival second.
        assert!((est.per_template[a_idx][0] - 2.0).abs() < 1e-9);
        assert!(est.per_template[a_idx][1].abs() < 1e-9);
    }

    #[test]
    fn parallel_estimation_is_bit_identical() {
        let mut log = Vec::new();
        for t in 0..20 {
            for j in 0..6 {
                log.push(rec((t + j) % 2, t as f64 * 1000.0 + j as f64 * 157.0, 730.0));
            }
        }
        let case = aggregate_case(
            &log,
            &specs2(),
            &metrics_with_probes(20, vec![(3, 2, 400.0), (11, 4, 800.0)]),
            0,
            20,
        );
        for kind in [EstimatorKind::NoBuckets, EstimatorKind::Buckets] {
            let serial = estimate_sessions(&case, &cfg(kind, 10).with_parallelism(1));
            for p in [0usize, 2, 4, 16] {
                let par = estimate_sessions(&case, &cfg(kind, 10).with_parallelism(p));
                assert_eq!(serial.selected_bucket, par.selected_bucket, "{kind:?} p={p}");
                for (a, b) in serial.per_template.iter().zip(&par.per_template) {
                    let bits =
                        |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(a), bits(b), "{kind:?} p={p}");
                }
            }
        }
    }

    #[test]
    fn empty_case_is_fine() {
        let case = aggregate_case(&[], &specs2(), &metrics_with_probes(3, vec![]), 0, 3);
        let est = estimate_sessions(&case, &cfg(EstimatorKind::Buckets, 10));
        assert!(est.per_template.is_empty());
        assert_eq!(est.instance_estimate, vec![0.0; 3]);
    }

    #[test]
    fn non_finite_probe_values_fall_back_to_bucket_zero() {
        // Regression: a NaN in the active-session series used to make every
        // bucket comparison false, which silently kept bucket 0 — but only
        // after `(target - est).abs()` produced NaN; make the fallback
        // explicit and assert the estimate stays finite.
        let log = vec![rec(0, 0.0, 350.0), rec(1, 1200.0, 600.0)];
        let mut metrics = metrics_with_probes(3, vec![(0, 1, 320.0)]);
        metrics.active_session[1] = f64::NAN;
        // Bypass aggregate_case's sanitization to hit the estimator directly.
        let mut case = aggregate_case(&log, &specs2(), &metrics, 0, 3);
        case.metrics.active_session[1] = f64::NAN;
        let est = estimate_sessions(&case, &cfg(EstimatorKind::Buckets, 10));
        assert_eq!(est.selected_bucket[1], 0);
        for row in &est.per_template {
            assert!(row.iter().all(|v| v.is_finite()));
        }
        assert!(est.instance_estimate.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_finite_records_do_not_poison_estimates() {
        // Regression: a record with a NaN start or response used to flow
        // into `floor() as usize` index arithmetic. It must simply be
        // ignored by the accumulator.
        let log = vec![rec(0, 500.0, 1000.0)];
        let case = aggregate_case(&log, &specs2(), &metrics_with_probes(3, vec![]), 0, 3);
        // Inject corrupt records under the aggregated case's nose.
        let mut case = case;
        case.records.push(rec(0, f64::NAN, 100.0));
        case.records.push(rec(0, 2500.0, f64::INFINITY));
        case.templates[0].record_idx.push(1);
        case.templates[0].record_idx.push(2);
        let est = estimate_sessions(&case, &cfg(EstimatorKind::Buckets, 10));
        let a_idx = case.template_index(case.catalog.id_of_spec(SpecId(0))).unwrap();
        assert!((est.per_template[a_idx][0] - 0.5).abs() < 1e-9);
        assert!(est.per_template[a_idx].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn bucketed_beats_rt_on_probe_correlation() {
        // Synthetic stream with queries of varying lengths: correlation of
        // the estimate with the true per-second activity must be higher for
        // the bucketed estimator than for the RT proxy. True activity is
        // computed from the records at mid-second instants.
        use pinsql_timeseries::pearson;
        let mut log = Vec::new();
        let mut t = 0.0;
        let mut k = 0u64;
        while t < 60_000.0 {
            // deterministic pseudo-random lengths
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let rt = 20.0 + (k % 3000) as f64;
            let spec = (k % 2) as usize;
            log.push(rec(spec, t, rt));
            t += 35.0 + (k % 150) as f64;
        }
        let n = 60;
        // Ground truth via mid-second probes.
        let probes: Vec<(i64, u32, f64)> = (0..n)
            .map(|s| {
                let instant = s as f64 * 1000.0 + 500.0;
                let active = log.iter().filter(|r| r.active_at(instant)).count() as u32;
                (s as i64, active, instant)
            })
            .collect();
        let truth: Vec<f64> = probes.iter().map(|&(_, a, _)| a as f64).collect();
        let case = aggregate_case(&log, &specs2(), &metrics_with_probes(n, probes), 0, n as i64);
        let est_rt = estimate_sessions(&case, &cfg(EstimatorKind::ByRt, 10));
        let est_bk = estimate_sessions(&case, &cfg(EstimatorKind::Buckets, 10));
        let corr_rt = pearson(&est_rt.instance_estimate, &truth);
        let corr_bk = pearson(&est_bk.instance_estimate, &truth);
        assert!(
            corr_bk > corr_rt,
            "bucketed ({corr_bk:.3}) should beat RT ({corr_rt:.3})"
        );
        assert!(corr_bk > 0.9, "bucketed should track truth closely: {corr_bk:.3}");
    }
}
