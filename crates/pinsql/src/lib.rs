//! PinSQL — pinpointing root-cause SQL templates for cloud-database
//! performance anomalies (Liu et al., ICDE 2022).
//!
//! The library follows the anomaly propagation chain the paper introduces:
//!
//! ```text
//! R-SQLs  ──affect──▶  H-SQLs  ──inflate──▶  active session  ──▶ detector
//! ```
//!
//! and walks it backwards once an anomaly case is detected:
//!
//! 1. [`session_estimate`] (§IV-C) — estimate each template's *individual
//!    active session* from query logs alone, using the bucket trick to
//!    localize the unknown `SHOW STATUS` probe instant;
//! 2. [`hsql`] (§V) — rank templates by a fused impact score
//!    (trend-level + scale-level + scale-trend-level) to find the
//!    High-impact SQLs that directly drive the session anomaly;
//! 3. [`rsql`] (§VI) — cluster templates by execution-trend correlation
//!    (business clusters), rank clusters by H-SQL impact, select clusters
//!    by the cumulative threshold, verify candidates against 1/3/7-day
//!    history, and rank the surviving Root-cause SQLs;
//! 4. [`repair`] (§VII) — suggest/execute throttling, query optimization,
//!    or autoscale actions on the pinpointed R-SQLs.
//!
//! [`pipeline::PinSql`] ties the stages together and reports per-stage
//! wall-clock timings (the Table I `Time` column).

pub mod config;
pub mod hsql;
pub mod pipeline;
pub mod repair;
pub mod report;
pub mod rsql;
pub mod session_estimate;

pub use config::{Ablation, ConfigEpoch, EstimatorKind, PinSqlConfig, PinSqlDelta, TransportPolicy};
pub use hsql::{rank_hsqls, HsqlRanking};
pub use pipeline::{Diagnosis, PinSql, RankedTemplate, StageTimings};
pub use repair::{
    suggest_actions, suggest_actions_observed, RepairAction, RepairConfig, RepairRule,
    SuggestedAction,
};
pub use report::{render_report, ReportOptions};
pub use rsql::{identify_rsqls, RsqlOutcome};
pub use session_estimate::{estimate_sessions, SessionEstimates};
