//! High-impact SQL identification (§V).
//!
//! A template is an H-SQL when it *directly* drives the instance
//! active-session anomaly. Three complementary scores, each in `[-1, 1]`,
//! are fused:
//!
//! * **trend-level** — weighted Pearson correlation between the template's
//!   estimated session and the instance session, with sigmoid weights
//!   emphasizing the anomaly window (filters templates whose shape doesn't
//!   match);
//! * **scale-level** — min-max-normalized total session mass inside the
//!   anomaly window, rescaled to `[-1, 1]` (filters well-correlated but
//!   negligible templates);
//! * **scale-trend-level** — correlation between the template's session
//!   *share* `session_Q/session` and the session itself (rewards templates
//!   whose share grows exactly when the anomaly is on).
//!
//! The fusion weights adapt: with `Q_max` the largest template by session
//! mass, `α = corr(session_{Q_max}, session)` and `β = −α`, giving
//! `impact(Q) = β·trend(Q) + scale_trend(Q) + α·scale(Q)`. When the biggest
//! template explains the session (α → 1), scale dominates; when it does
//! not, trend takes over.

use crate::config::PinSqlConfig;
use crate::session_estimate::SessionEstimates;
use pinsql_collector::CaseData;
use pinsql_detect::AnomalyWindow;
use pinsql_timeseries::{
    min_max_normalize, par_map, pearson, sigmoid_window_weights, weighted_pearson,
};

/// Division guard for the session share.
const SHARE_EPS: f64 = 1e-9;

/// Anomaly-window slice bounds within the collection window, both ends
/// clamped to the case length: a detection window inconsistent with the
/// aggregated data (possible under degraded telemetry) must yield an empty
/// slice, not an out-of-bounds panic. Shared by the H-SQL mass slice and
/// the R-SQL Top-RT ablation so the two stages can never disagree on the
/// clamp rule.
pub(crate) fn anomaly_bounds(case: &CaseData, window: &AnomalyWindow) -> (usize, usize) {
    let a_lo = ((window.anomaly_start - window.ts()).max(0) as usize).min(case.n_seconds());
    let a_hi = ((window.anomaly_end - window.ts()).max(0) as usize).min(case.n_seconds());
    (a_lo, a_hi)
}

/// The H-SQL ranking plus per-level diagnostics.
#[derive(Debug, Clone)]
pub struct HsqlRanking {
    /// `(template index, impact)`, impact descending.
    pub ranked: Vec<(usize, f64)>,
    /// Per-template level scores (aligned with `case.templates`).
    pub trend: Vec<f64>,
    pub scale: Vec<f64>,
    pub scale_trend: Vec<f64>,
    /// Adaptive fusion weights.
    pub alpha: f64,
    pub beta: f64,
}

impl HsqlRanking {
    /// Impact of template `i` (0.0 when out of range).
    pub fn impact_of(&self, i: usize) -> f64 {
        self.ranked.iter().find(|(idx, _)| *idx == i).map_or(0.0, |(_, s)| *s)
    }
}

/// Ranks all templates of the case by H-SQL impact.
pub fn rank_hsqls(
    case: &CaseData,
    est: &SessionEstimates,
    window: &AnomalyWindow,
    cfg: &PinSqlConfig,
) -> HsqlRanking {
    let n = case.templates.len();
    let session = case.instance_session();
    let weights = sigmoid_window_weights(
        window.ts(),
        window.te(),
        1,
        window.anomaly_start,
        window.anomaly_end,
        cfg.ks,
    );
    let ab = cfg.ablation;
    let parallelism = cfg.effective_parallelism();

    let (a_lo, a_hi) = anomaly_bounds(case, window);

    // Trend level. Per-template scores are independent, so both weighted-
    // correlation loops fan out; the merge is by template index, keeping
    // the scores bit-identical to the serial loop.
    let trend: Vec<f64> = par_map(n, parallelism, |i| {
        if ab.no_trend_level {
            0.0
        } else {
            weighted_pearson(est.of(i), session, &weights)
        }
    });

    // Scale level: total session inside the anomaly window, min-max over
    // templates, rescaled into [-1, 1].
    let raw_mass: Vec<f64> =
        (0..n).map(|i| est.of(i)[a_lo..a_hi.max(a_lo)].iter().sum::<f64>()).collect();
    let mut scale = raw_mass.clone();
    min_max_normalize(&mut scale);
    for v in &mut scale {
        *v = 2.0 * *v - 1.0;
    }
    if ab.no_scale_level {
        scale.iter_mut().for_each(|v| *v = 0.0);
    }

    // Scale-trend level: corr(session_Q / session, session).
    let scale_trend: Vec<f64> = par_map(n, parallelism, |i| {
        if ab.no_scale_trend_level {
            return 0.0;
        }
        let share: Vec<f64> = est
            .of(i)
            .iter()
            .zip(session)
            .map(|(&q, &s)| if s.abs() < SHARE_EPS { 0.0 } else { q / s })
            .collect();
        pearson(&share, session)
    });

    // Adaptive weights.
    let (alpha, beta) = if ab.no_weighted_final {
        (1.0, 1.0)
    } else if n == 0 {
        (0.0, 0.0)
    } else {
        let q_max = raw_mass
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty template set");
        let alpha = pearson(est.of(q_max), session);
        (alpha, -alpha)
    };

    let mut ranked: Vec<(usize, f64)> = (0..n)
        .map(|i| (i, beta * trend[i] + scale_trend[i] + alpha * scale[i]))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    HsqlRanking { ranked, trend, scale, scale_trend, alpha, beta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EstimatorKind;
    use crate::session_estimate::estimate_sessions;
    use pinsql_collector::aggregate_case;
    use pinsql_dbsim::probe::ProbeLog;
    use pinsql_dbsim::{InstanceMetrics, QueryRecord};
    use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};

    /// Builds a case with three templates over 120 s with an anomaly at
    /// [60, 90):
    ///   spec 0 "victim":  active only during the anomaly, big mass;
    ///   spec 1 "steady":  constant heavy traffic throughout;
    ///   spec 2 "tiny":    correlates with the anomaly but negligible mass.
    fn synthetic_case() -> (CaseData, AnomalyWindow) {
        let c = CostProfile::point_read(TableId(0));
        let specs = vec![
            TemplateSpec::new("SELECT * FROM v WHERE id = 1", c.clone(), "victim"),
            TemplateSpec::new("SELECT * FROM s WHERE id = 1", c.clone(), "steady"),
            TemplateSpec::new("SELECT * FROM t WHERE id = 1", c, "tiny"),
        ];
        let mut log = Vec::new();
        let mut session = vec![0.0; 120];
        for t in 0..120i64 {
            // steady: 10 concurrent 1s-queries every second
            for j in 0..10 {
                log.push(QueryRecord {
                    spec: SpecId(1),
                    start_ms: t as f64 * 1000.0 + j as f64 * 90.0,
                    response_ms: 900.0,
                    examined_rows: 1,
                });
            }
            let mut active = 9.0; // steady contributes ~9 at mid-second
            if (60..90).contains(&t) {
                // victim: 40 slow queries per second
                for j in 0..40 {
                    log.push(QueryRecord {
                        spec: SpecId(0),
                        start_ms: t as f64 * 1000.0 + j as f64 * 20.0,
                        response_ms: 950.0,
                        examined_rows: 2,
                    });
                }
                // tiny: 1 query per second
                log.push(QueryRecord {
                    spec: SpecId(2),
                    start_ms: t as f64 * 1000.0 + 100.0,
                    response_ms: 400.0,
                    examined_rows: 1,
                });
                active += 40.0;
            }
            session[t as usize] = active;
        }
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: session,
            cpu_usage: vec![0.0; 120],
            iops_usage: vec![0.0; 120],
            row_lock_waits: vec![0.0; 120],
            mdl_waits: vec![0.0; 120],
            qps: vec![0.0; 120],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&log, &specs, &metrics, 0, 120);
        let window = AnomalyWindow { anomaly_start: 60, anomaly_end: 90, delta_s: 60 };
        (case, window)
    }

    fn idx_of(case: &CaseData, spec: usize) -> usize {
        case.template_index(case.catalog.id_of_spec(SpecId(spec))).unwrap()
    }

    #[test]
    fn victim_outranks_steady_and_tiny() {
        let (case, window) = synthetic_case();
        let cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        let est = estimate_sessions(&case, &cfg);
        let ranking = rank_hsqls(&case, &est, &window, &cfg);
        let victim = idx_of(&case, 0);
        assert_eq!(ranking.ranked[0].0, victim, "victim must rank first: {ranking:?}");
        assert!(ranking.impact_of(victim) > ranking.impact_of(idx_of(&case, 1)));
        assert!(ranking.impact_of(victim) > ranking.impact_of(idx_of(&case, 2)));
    }

    #[test]
    fn trend_scores_reflect_anomaly_correlation() {
        let (case, window) = synthetic_case();
        let cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        let est = estimate_sessions(&case, &cfg);
        let r = rank_hsqls(&case, &est, &window, &cfg);
        let victim = idx_of(&case, 0);
        let steady = idx_of(&case, 1);
        assert!(r.trend[victim] > 0.9, "victim trend {}", r.trend[victim]);
        assert!(r.trend[victim] > r.trend[steady] + 0.3);
        // Victim has the most session mass in the anomaly window.
        assert!(r.scale[victim] > r.scale[steady]);
    }

    #[test]
    fn ablation_disables_levels() {
        let (case, window) = synthetic_case();
        let mut cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        cfg.ablation.no_trend_level = true;
        cfg.ablation.no_scale_level = true;
        cfg.ablation.no_scale_trend_level = true;
        let est = estimate_sessions(&case, &cfg);
        let r = rank_hsqls(&case, &est, &window, &cfg);
        assert!(r.trend.iter().all(|&v| v == 0.0));
        assert!(r.scale.iter().all(|&v| v == 0.0));
        assert!(r.scale_trend.iter().all(|&v| v == 0.0));
        assert!(r.ranked.iter().all(|&(_, s)| s == 0.0));
    }

    #[test]
    fn no_weighted_final_uses_unit_weights() {
        let (case, window) = synthetic_case();
        let mut cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        cfg.ablation.no_weighted_final = true;
        let est = estimate_sessions(&case, &cfg);
        let r = rank_hsqls(&case, &est, &window, &cfg);
        assert_eq!(r.alpha, 1.0);
        assert_eq!(r.beta, 1.0);
    }

    #[test]
    fn alpha_beta_are_opposite() {
        let (case, window) = synthetic_case();
        let cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        let est = estimate_sessions(&case, &cfg);
        let r = rank_hsqls(&case, &est, &window, &cfg);
        assert!((r.alpha + r.beta).abs() < 1e-12);
        assert!((-1.0..=1.0).contains(&r.alpha));
    }

    #[test]
    fn window_beyond_case_does_not_panic() {
        // Regression: an anomaly window extending past the aggregated data
        // used to slice `est.of(i)[a_lo..]` out of bounds.
        let (case, _) = synthetic_case();
        let cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        let est = estimate_sessions(&case, &cfg);
        let beyond = AnomalyWindow { anomaly_start: 500, anomaly_end: 600, delta_s: 400 };
        let r = rank_hsqls(&case, &est, &beyond, &cfg);
        assert_eq!(r.ranked.len(), case.templates.len());
        assert!(r.ranked.iter().all(|&(_, s)| s.is_finite()));

        let zero_len = AnomalyWindow { anomaly_start: 60, anomaly_end: 60, delta_s: 30 };
        let r = rank_hsqls(&case, &est, &zero_len, &cfg);
        assert!(r.ranked.iter().all(|&(_, s)| s.is_finite()));
    }

    #[test]
    fn empty_case_yields_empty_ranking() {
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: vec![0.0; 10],
            cpu_usage: vec![0.0; 10],
            iops_usage: vec![0.0; 10],
            row_lock_waits: vec![0.0; 10],
            mdl_waits: vec![0.0; 10],
            qps: vec![0.0; 10],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&[], &[], &metrics, 0, 10);
        let cfg = PinSqlConfig::default();
        let est = estimate_sessions(&case, &cfg);
        let window = AnomalyWindow { anomaly_start: 4, anomaly_end: 8, delta_s: 4 };
        let r = rank_hsqls(&case, &est, &window, &cfg);
        assert!(r.ranked.is_empty());
    }
}
