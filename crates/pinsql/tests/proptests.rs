//! Property-based tests of the PinSQL core invariants on randomized cases.

use pinsql::{estimate_sessions, identify_rsqls, rank_hsqls, EstimatorKind, PinSqlConfig};
use pinsql_collector::{aggregate_case, CaseData, HistoryStore};
use pinsql_detect::AnomalyWindow;
use pinsql_dbsim::probe::{ProbeLog, ProbeSample};
use pinsql_dbsim::{InstanceMetrics, QueryRecord};
use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};
use proptest::prelude::*;

/// Strategy: a random small case (a handful of templates, a 120-second
/// window, arbitrary query placements) plus a mid-window anomaly.
fn random_case() -> impl Strategy<Value = (CaseData, AnomalyWindow)> {
    let record = (0usize..6, 0.0f64..120_000.0, 0.1f64..20_000.0, 0u64..10_000)
        .prop_map(|(spec, start_ms, response_ms, examined_rows)| QueryRecord {
            spec: SpecId(spec),
            start_ms,
            response_ms,
            examined_rows,
        });
    (prop::collection::vec(record, 1..400), prop::collection::vec(0u32..50, 120))
        .prop_map(|(log, probe_vals)| {
            let specs: Vec<TemplateSpec> = (0..6)
                .map(|i| {
                    TemplateSpec::new(
                        &format!("SELECT c{i} FROM t{i} WHERE id = 1"),
                        CostProfile::point_read(TableId(0)),
                        format!("tpl{i}"),
                    )
                })
                .collect();
            let n = 120usize;
            let metrics = InstanceMetrics {
                start_second: 0,
                active_session: probe_vals.iter().map(|&v| v as f64).collect(),
                cpu_usage: vec![0.2; n],
                iops_usage: vec![0.1; n],
                row_lock_waits: vec![0.0; n],
                mdl_waits: vec![0.0; n],
                qps: vec![0.0; n],
                probes: ProbeLog {
                    samples: (0..n)
                        .map(|s| ProbeSample {
                            second: s as i64,
                            active_sessions: probe_vals[s],
                            true_instant_ms: s as f64 * 1000.0 + 500.0,
                        })
                        .collect(),
                },
            };
            let case = aggregate_case(&log, &specs, &metrics, 0, n as i64);
            let window = AnomalyWindow { anomaly_start: 60, anomaly_end: 90, delta_s: 60 };
            (case, window)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Estimates are non-negative and never exceed the number of possibly
    /// active queries; per-template rows sum exactly to the instance row.
    #[test]
    fn estimates_are_consistent((case, _w) in random_case()) {
        for kind in [EstimatorKind::ByRt, EstimatorKind::NoBuckets, EstimatorKind::Buckets] {
            let cfg = PinSqlConfig::default().with_estimator(kind);
            let est = estimate_sessions(&case, &cfg);
            prop_assert_eq!(est.per_template.len(), case.templates.len());
            let n_records = case.records.len() as f64;
            for t in 0..case.n_seconds() {
                let mut sum = 0.0;
                for row in &est.per_template {
                    prop_assert!(row[t] >= 0.0, "{kind:?}: negative estimate");
                    sum += row[t];
                }
                prop_assert!((sum - est.instance_estimate[t]).abs() < 1e-6);
                if kind != EstimatorKind::ByRt {
                    prop_assert!(
                        est.instance_estimate[t] <= n_records + 1e-6,
                        "{kind:?}: estimate exceeds record count"
                    );
                }
            }
        }
    }

    /// Impact scores are bounded by the fusion's algebraic range and the
    /// ranking is a permutation of all templates, sorted descending.
    #[test]
    fn hsql_ranking_is_bounded_sorted_permutation((case, w) in random_case()) {
        let cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        let est = estimate_sessions(&case, &cfg);
        let r = rank_hsqls(&case, &est, &w, &cfg);
        prop_assert_eq!(r.ranked.len(), case.templates.len());
        let mut seen: Vec<usize> = r.ranked.iter().map(|&(i, _)| i).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..case.templates.len()).collect::<Vec<_>>());
        for pair in r.ranked.windows(2) {
            prop_assert!(pair[0].1 >= pair[1].1, "not sorted: {:?}", r.ranked);
        }
        for &(_, score) in &r.ranked {
            prop_assert!(score.abs() <= 3.0 + 1e-9, "|impact| > 3: {score}");
            prop_assert!(!score.is_nan());
        }
    }

    /// Clusters partition the template set; candidates and verified are
    /// subsets; the final ranking only contains candidates.
    #[test]
    fn rsql_outcome_structural_invariants((case, w) in random_case()) {
        let cfg = PinSqlConfig::default().with_estimator(EstimatorKind::NoBuckets);
        let est = estimate_sessions(&case, &cfg);
        let hs = rank_hsqls(&case, &est, &w, &cfg);
        let out = identify_rsqls(&case, &est, &hs, &w, &HistoryStore::new(), 1_000_000, &cfg);
        let mut all: Vec<usize> = out.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..case.templates.len()).collect::<Vec<_>>());
        prop_assert!(out.selected_clusters <= out.clusters.len().max(1));
        for &c in &out.verified {
            prop_assert!(out.candidates.contains(&c));
        }
        for &(i, score) in &out.ranked {
            prop_assert!(out.candidates.contains(&i));
            prop_assert!(!score.is_nan());
        }
    }
}
