//! Incremental per-template aggregation with bounded state.
//!
//! The online replacement for [`aggregate_case`](crate::aggregate_case):
//! instead of densifying a complete trace after the fact, the
//! [`IncrementalAggregator`] folds a [`TelemetryEvent`] stream as it
//! arrives into
//!
//! * ring-buffered **1-second cells** — per-template `(count, total
//!   response time, examined rows)` keyed by absolute second;
//! * a bounded **raw-record ring** — the §IV-C session estimator needs the
//!   individual records of a collection window, so they are retained for
//!   the same horizon as the cells (the paper keeps three days of raw
//!   logs; the default here is shorter because simulated windows are);
//! * a bounded **metric-sample ring** — one [`MetricsSample`] per second;
//! * an in-line **1-minute history feed** — each fully-elapsed minute's
//!   per-template execution counts are folded into a [`HistoryStore`] for
//!   §VI history-trend verification, so a long-running instance
//!   accumulates its own look-back without any batch job.
//!
//! Everything except the history store is bounded by
//! [`IncrementalConfig::retention_s`]: as the watermark advances, cells,
//! records, and metric samples older than the horizon are evicted.
//!
//! ## The allocation-lean hot path
//!
//! Attributing one query record costs two dense-`Vec` lookups (spec →
//! catalog slot, slot → cell in the second's compact row — see
//! [`CellStoreKind`]) and a ring push; no hashing, no per-record
//! allocation (evicted rows are recycled, so the steady state allocates
//! nothing per second either). Time-ordered streams should prefer the
//! chunked entry points
//! ([`ingest_query_run`](IncrementalAggregator::ingest_query_run) /
//! [`ingest_drain`](IncrementalAggregator::ingest_drain)), which amortize
//! the watermark check and the row lookup across every record of a second
//! and devirtualize the cell-store representation once per run. Per-minute
//! history folding reuses one slot-indexed scratch buffer instead of
//! building a map per minute.
//!
//! ## The incremental cut
//!
//! With [`CutKind::Incremental`] (the default), the aggregator also keeps
//! *running* per-template moments at ingest — per-slot execution-count
//! moments, count·session co-sums, and global session moments — evicted in
//! step with retention. A `snapshot` then carries a
//! [`WindowCut`](crate::WindowCut): every template's 1-minute matrix row
//! (bucketed during the sweep the snapshot already runs, bit-identical to
//! `TemplateSeries::per_minute`) plus an advisory template↔session Pearson
//! gate assembled from the sums in O(templates). [`CutKind::Reference`]
//! turns all of it off and leaves each cut to re-derive rows from the raw
//! series.
//!
//! `snapshot` is assembled from running state, not a re-scan: one sweep
//! over the window's touched cells yields every template's execution-count
//! moments ([`MomentAccumulator`]), after which each template's window
//! membership, total record count (hence the exact `record_idx` /
//! `records` capacities), and summary statistics are O(1) field reads —
//! see [`window_moments`](IncrementalAggregator::window_moments). On
//! time-ordered streams the record ring is known sorted (a cheap flag
//! maintained at ingest), so the window's records are located by binary
//! search instead of scanning the whole retention horizon.
//!
//! ## Replay equivalence
//!
//! [`IncrementalAggregator::snapshot`] re-assembles a [`CaseData`] for any
//! window still inside the retention horizon. For a stream produced by
//! [`pinsql_dbsim::telemetry::interleave`] (time-ordered, arrival-stable),
//! the snapshot is **bit-identical** to what
//! [`aggregate_case`](crate::aggregate_case) computes from the complete
//! trace: records are ingested in the same order the batch path sums them,
//! so every per-cell floating-point accumulation happens in the same
//! sequence — through the scalar *and* the chunked entry points, over
//! either cell-store kind. The engine crate's golden replay tests pin this
//! contract.

use crate::aggregate::{CaseData, TemplateData, TemplateSeries, WindowCut};
use crate::catalog::TemplateCatalog;
use crate::cellstore::{Cell, CellStore, CellStoreKind, RowMut};
use crate::history::HistoryStore;
use pinsql_dbsim::probe::ProbeLog;
use pinsql_dbsim::telemetry::query_run;
use pinsql_dbsim::{InstanceMetrics, MetricsSample, QueryRecord, TelemetryEvent};
use pinsql_sqlkit::SqlId;
use pinsql_timeseries::{
    CoMomentAccumulator, CutKind, MomentAccumulator, WireError, WireReader, WireWriter,
};
use pinsql_workload::TemplateSpec;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Non-finite telemetry reads as 0 everywhere the cut moments touch it —
/// the same rule [`window_metrics`](IncrementalAggregator::snapshot) and
/// the batch slicer apply, so the running sums agree with what a window
/// re-scan would see.
#[inline]
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// Tuning for the incremental aggregator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalConfig {
    /// Seconds of cells / records / metric samples to retain behind the
    /// watermark. Must cover the largest collection window a diagnosis
    /// will ask for (`δ_s` + anomaly length), and must be ≥ 60 so every
    /// minute folds into the history feed before any of its cells can be
    /// evicted (the fold counts executions at ingest time; see
    /// `fold_history`).
    pub retention_s: i64,
    /// Absolute minute index the stream's second 0 maps to in the history
    /// store's timeline (histories are addressed by absolute minute).
    pub history_origin_min: i64,
    /// Row representation for the per-second cell ring (dense slab by
    /// default; the hashed reference kind is for equivalence tests and
    /// enormous sparse catalogs).
    #[serde(default)]
    pub cell_store: CellStoreKind,
    /// Whether window cuts carry running-moment state assembled at ingest
    /// (`Incremental`, the default) or leave every cut to re-derive its
    /// rows from the raw series (`Reference`).
    #[serde(default)]
    pub cut: CutKind,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            retention_s: 7200,
            history_origin_min: 0,
            cell_store: CellStoreKind::Dense,
            cut: CutKind::default(),
        }
    }
}

impl IncrementalConfig {
    /// Builder-style retention override.
    pub fn with_retention(mut self, retention_s: i64) -> Self {
        assert!(retention_s >= 60, "retention must cover at least one full minute");
        self.retention_s = retention_s;
        self
    }

    /// Builder-style history-origin override.
    pub fn with_history_origin(mut self, minute: i64) -> Self {
        self.history_origin_min = minute;
        self
    }

    /// Builder-style cell-store override.
    pub fn with_cell_store(mut self, kind: CellStoreKind) -> Self {
        self.cell_store = kind;
        self
    }

    /// Builder-style cut-path override.
    pub fn with_cut(mut self, cut: CutKind) -> Self {
        self.cut = cut;
        self
    }
}

/// Ingestion counters (observability for the fleet engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestStats {
    /// Total events ingested (all variants).
    pub events: u64,
    /// Query records folded into cells.
    pub queries: u64,
    /// Records dropped for non-finite timestamps/response times.
    pub malformed: u64,
    /// Events older than the retention horizon, dropped on arrival.
    pub late: u64,
    /// Per-second cell rows materialized in the ring since birth (a
    /// monotone fold counter; resident rows are `cell_seconds`).
    #[serde(default)]
    pub cells: u64,
    /// Cells, records, and metric samples evicted by retention.
    #[serde(default)]
    pub evictions: u64,
    /// Complete minutes folded into the in-line history feed.
    #[serde(default)]
    pub history_minutes: u64,
}

/// In-flight per-minute execution counts for the history feed.
///
/// `rows[m - start]` is the dense slot-count row for minute `m`. Records
/// bump their minute's row at ingest time; when a minute completes the
/// fold detaches its row and emits it — no re-read of the minute's 60
/// cell rows, which are cache-cold by then. This is *exactly* equivalent
/// to re-scanning the cells because (a) counts are integer-valued sums of
/// `1.0`, so arrival order cannot change the total, (b) a record is
/// accumulated iff its minute is at or ahead of the fold frontier, which
/// is also precisely when a fold-time scan would still see it (minutes
/// behind the frontier never re-fold), and (c) `retention_s ≥ 60`
/// guarantees a minute folds before any of its cell rows can be evicted,
/// so a fold-time scan could never miss an accumulated record either.
#[derive(Debug, Clone, Default)]
struct MinuteAcc {
    /// Minute index of `rows.front()` (meaningless while `rows` is empty).
    start: i64,
    rows: VecDeque<Vec<f64>>,
    /// Recycled rows, so steady state allocates nothing per minute.
    free: Vec<Vec<f64>>,
}

impl MinuteAcc {
    /// The slot-count row for `minute`, extending the ring to cover it.
    fn row_mut(&mut self, minute: i64, n_slots: usize) -> &mut [f64] {
        if self.rows.is_empty() {
            self.start = minute;
            let row = Self::zeroed(&mut self.free, n_slots);
            self.rows.push_back(row);
        } else if minute < self.start {
            for _ in 0..(self.start - minute) {
                let row = Self::zeroed(&mut self.free, n_slots);
                self.rows.push_front(row);
            }
            self.start = minute;
        } else {
            while self.rows.len() <= (minute - self.start) as usize {
                let row = Self::zeroed(&mut self.free, n_slots);
                self.rows.push_back(row);
            }
        }
        &mut self.rows[(minute - self.start) as usize]
    }

    /// Detaches `minute`'s counts if any were accumulated. Rows behind
    /// `minute` are recycled (the fold visits minutes in order, so they
    /// can only be rows a gap minute never touched).
    fn take(&mut self, minute: i64) -> Option<Vec<f64>> {
        while !self.rows.is_empty() && self.start < minute {
            let row = self.rows.pop_front().expect("checked non-empty");
            self.free.push(row);
            self.start += 1;
        }
        if self.rows.is_empty() || self.start != minute {
            return None;
        }
        self.start += 1;
        self.rows.pop_front()
    }

    /// Returns a detached row to the recycle pool.
    fn recycle(&mut self, row: Vec<f64>) {
        self.free.push(row);
    }

    fn zeroed(free: &mut Vec<Vec<f64>>, n_slots: usize) -> Vec<f64> {
        let mut row = free.pop().unwrap_or_default();
        row.clear();
        row.resize(n_slots, 0.0);
        row
    }
}

/// Running per-template moment state behind [`CutKind::Incremental`].
///
/// Maintained in O(1) per record and per metric sample, evicted in step
/// with retention, so a window cut assembles its template↔session gate
/// Pearson scores from sums (total minus the out-of-window remainder)
/// instead of re-scanning the window. The per-slot count moments are
/// integer-valued (sums of per-second execution counts), so push/evict
/// round-trips are exact and the running state never drifts; the
/// count·session co-sums are real-valued and back only the *advisory*
/// gate, so their tolerance is pinned by property tests rather than
/// bit-identity.
#[derive(Debug, Clone, Default)]
struct CutTracker {
    /// Live iff the config says `CutKind::Incremental`.
    enabled: bool,
    /// Per-slot moments of per-second execution counts over the seconds
    /// the template has a resident cell in.
    counts: Vec<MomentAccumulator>,
    /// Per-slot Σ count·session over the same seconds (an absent metric
    /// sample reads 0; corrected in place when the sample lands).
    sxy: Vec<f64>,
    /// Active-session moments over resident metric seconds, non-finite
    /// samples read as 0 like `window_metrics`.
    sessions: MomentAccumulator,
    /// Moment updates applied (records + metric samples) since birth.
    pushed: u64,
    /// Contributions evicted past the retention horizon since birth.
    evicted: u64,
}

impl CutTracker {
    fn new(enabled: bool, n_slots: usize) -> Self {
        let n = if enabled { n_slots } else { 0 };
        Self {
            enabled,
            counts: vec![MomentAccumulator::default(); n],
            sxy: vec![0.0; n],
            sessions: MomentAccumulator::default(),
            pushed: 0,
            evicted: 0,
        }
    }

    /// One record landed on `slot`, whose cell previously held `prev`
    /// executions this second; `session` is the second's current reading.
    /// The count moment swaps `prev → prev + 1` and the co-sum grows by
    /// `(prev+1)·y − prev·y = y`.
    #[inline]
    fn on_record(&mut self, slot: u32, prev: f64, session: f64) {
        if !self.enabled {
            return;
        }
        let m = &mut self.counts[slot as usize];
        if prev > 0.0 {
            m.evict(prev);
        }
        m.push(prev + 1.0);
        self.sxy[slot as usize] += session;
        self.pushed += 1;
    }

    /// A cell holding `count` executions at a second reading `session`
    /// left the retention horizon.
    #[inline]
    fn evict_cell(&mut self, slot: u32, count: f64, session: f64) {
        self.counts[slot as usize].evict(count);
        self.sxy[slot as usize] -= count * session;
        self.evicted += 1;
    }
}

/// The incremental, bounded-state aggregation engine.
#[derive(Debug, Clone)]
pub struct IncrementalAggregator {
    catalog: TemplateCatalog,
    cfg: IncrementalConfig,
    /// Retained raw records in arrival order.
    records: VecDeque<QueryRecord>,
    /// True while `records` is non-decreasing in `start_ms` — the
    /// time-ordered-stream common case, which lets `snapshot` binary-search
    /// the window instead of scanning the ring.
    records_sorted: bool,
    /// Per-second cell rows for contiguous seconds
    /// `[cells_start, cells_start + cells.len())`.
    cells: CellStore,
    cells_start: i64,
    /// Per-second metric samples for contiguous seconds
    /// `[metrics_start, metrics_start + metrics.len())`.
    metrics: VecDeque<MetricsSample>,
    metrics_start: i64,
    /// All telemetry with timestamps `< watermark` has been delivered.
    watermark: i64,
    history: HistoryStore,
    /// Next stream minute (relative, i.e. `second / 60`) to fold into the
    /// history store; `None` until the first cell arrives.
    history_next_min: Option<i64>,
    stats: IngestStats,
    /// In-flight per-minute execution counts, bumped at ingest time while
    /// the record is in hand instead of re-scanning the minute's (by then
    /// cache-cold) cell rows when it folds.
    minute_acc: MinuteAcc,
    /// Slot → cached [`HistoryStore`] entry index (`u32::MAX` = not yet
    /// resolved), so the minute fold hashes each template once ever.
    slot_hist: Vec<u32>,
    /// Slot → position-in-`templates` scratch for `snapshot`, reused per
    /// call (`u32::MAX` = template absent from the window).
    slot_pos: Vec<u32>,
    /// Running per-template cut moments (empty when the config says
    /// [`CutKind::Reference`]).
    cut_state: CutTracker,
}

impl IncrementalAggregator {
    /// Creates an aggregator for a workload's template specs.
    pub fn new(specs: &[TemplateSpec], cfg: IncrementalConfig) -> Self {
        Self::with_catalog(TemplateCatalog::from_specs(specs), cfg)
    }

    /// Creates an aggregator over a pre-built catalog.
    pub fn with_catalog(catalog: TemplateCatalog, cfg: IncrementalConfig) -> Self {
        assert!(cfg.retention_s >= 60, "retention must cover at least one full minute");
        let cells = CellStore::new(cfg.cell_store, catalog.n_slots());
        let cut_state = CutTracker::new(cfg.cut == CutKind::Incremental, catalog.n_slots());
        Self {
            catalog,
            cfg,
            records: VecDeque::new(),
            records_sorted: true,
            cells,
            cells_start: 0,
            metrics: VecDeque::new(),
            metrics_start: 0,
            watermark: i64::MIN,
            history: HistoryStore::new(),
            history_next_min: None,
            stats: IngestStats::default(),
            minute_acc: MinuteAcc::default(),
            slot_hist: Vec::new(),
            slot_pos: Vec::new(),
            cut_state,
        }
    }

    /// Folds one telemetry event into the aggregates.
    ///
    /// Callers that have already matched the event (the engine's instance
    /// loop does, to feed the detector bank) should call the per-variant
    /// entry points below instead of re-wrapping — same counters, same
    /// state, one `match` fewer per event.
    pub fn ingest(&mut self, ev: TelemetryEvent) {
        match ev {
            TelemetryEvent::Query(rec) => self.ingest_query_event(rec),
            TelemetryEvent::Metrics(sample) => self.ingest_metrics_event(*sample),
            TelemetryEvent::Tick { second } => self.ingest_tick(second),
        }
    }

    /// [`ingest`](Self::ingest) for an already-matched query event.
    #[inline]
    pub fn ingest_query_event(&mut self, rec: QueryRecord) {
        self.stats.events += 1;
        self.ingest_query(rec);
    }

    /// [`ingest`](Self::ingest) for an already-matched metrics event.
    #[inline]
    pub fn ingest_metrics_event(&mut self, sample: MetricsSample) {
        self.stats.events += 1;
        self.ingest_metrics(sample);
    }

    /// [`ingest`](Self::ingest) for an already-matched tick.
    #[inline]
    pub fn ingest_tick(&mut self, second: i64) {
        self.stats.events += 1;
        self.advance_watermark(second);
    }

    /// Folds a buffered stretch of a stream, chunking same-second query
    /// runs through [`ingest_query_run`](Self::ingest_query_run), then
    /// clears the buffer so callers can reuse its allocation.
    pub fn ingest_drain(&mut self, events: &mut Vec<TelemetryEvent>) {
        let mut i = 0;
        while i < events.len() {
            if let Some((second, len)) = query_run(events, i) {
                self.ingest_query_run(second, &events[i..i + len]);
                i += len;
            } else {
                // Move the event out; the placeholder is cleared below.
                let ev =
                    std::mem::replace(&mut events[i], TelemetryEvent::Tick { second: i64::MIN });
                self.ingest(ev);
                i += 1;
            }
        }
        events.clear();
    }

    /// Folds one query record (arrival attribution, §IV-A).
    pub fn ingest_query(&mut self, rec: QueryRecord) {
        if !rec.start_ms.is_finite() || !rec.response_ms.is_finite() {
            self.stats.malformed += 1;
            return;
        }
        let second = (rec.start_ms / 1000.0).floor() as i64;
        if self.watermark != i64::MIN && second < self.watermark - self.cfg.retention_s {
            self.stats.late += 1;
            return;
        }
        self.stats.queries += 1;
        let slot = self.catalog.slot_of_spec(rec.spec);
        let idx = self.row_index(second);
        let prev = self.cells.add(idx, slot, rec.response_ms, rec.examined_rows as f64);
        if self.cut_state.enabled {
            let session = self.session_at(second);
            self.cut_state.on_record(slot, prev, session);
        }
        let minute = second.div_euclid(60);
        if self.history_next_min.map_or(true, |next| minute >= next) {
            self.minute_acc.row_mut(minute, self.catalog.n_slots())[slot as usize] += 1.0;
        }
        if self.records.back().is_some_and(|b| rec.start_ms < b.start_ms) {
            self.records_sorted = false;
        }
        self.records.push_back(rec);
    }

    /// Folds a run of [`TelemetryEvent::Query`] events whose (finite)
    /// arrival timestamps all fall in `second` — the chunked hot path: the
    /// retention check and the cell-row lookup are paid once per run
    /// instead of once per record. Produces state and stats bit-identical
    /// to calling [`ingest`](Self::ingest) per event.
    ///
    /// Callers get runs from [`pinsql_dbsim::telemetry::query_run`]; the
    /// second/variant contract is debug-asserted.
    pub fn ingest_query_run(&mut self, second: i64, events: &[TelemetryEvent]) {
        self.stats.events += events.len() as u64;
        if self.watermark != i64::MIN && second < self.watermark - self.cfg.retention_s {
            // Late run: classify per record exactly like the scalar path
            // (a corrupted response time reads as malformed, not late).
            for ev in events {
                let TelemetryEvent::Query(rec) = ev else { continue };
                if rec.response_ms.is_finite() {
                    self.stats.late += 1;
                } else {
                    self.stats.malformed += 1;
                }
            }
            return;
        }
        let idx = self.row_index(second);
        let minute = second.div_euclid(60);
        // The whole run shares one second, so its session reading — the
        // cut tracker's co-moment `y` — resolves once per run too.
        let session = if self.cut_state.enabled { self.session_at(second) } else { 0.0 };
        let Self {
            cells,
            catalog,
            records,
            records_sorted,
            stats,
            minute_acc,
            history_next_min,
            cut_state,
            ..
        } = self;
        // The whole run lands in one minute; resolve its history counts
        // row once (None when the minute already folded — a late run the
        // history feed must not double-count).
        let mut hist: Option<&mut [f64]> = history_next_min
            .map_or(true, |next| minute >= next)
            .then(|| minute_acc.row_mut(minute, catalog.n_slots()));
        // Dispatch the row representation once per run, not once per
        // record: each arm hands `fold_run` a monomorphic cell fold.
        match cells.row_mut(idx) {
            RowMut::Dense(mut row) => Self::fold_run(
                second,
                events,
                catalog,
                records,
                records_sorted,
                stats,
                |slot, rt, rows| {
                    let prev = row.add(slot, rt, rows);
                    cut_state.on_record(slot, prev, session);
                    if let Some(h) = hist.as_deref_mut() {
                        h[slot as usize] += 1.0;
                    }
                },
            ),
            RowMut::Hashed(map) => Self::fold_run(
                second,
                events,
                catalog,
                records,
                records_sorted,
                stats,
                |slot, rt, rows| {
                    let cell = map.entry(slot).or_insert((0.0, 0.0, 0.0));
                    let prev = cell.0;
                    cell.0 += 1.0;
                    cell.1 += rt;
                    cell.2 += rows;
                    cut_state.on_record(slot, prev, session);
                    if let Some(h) = hist.as_deref_mut() {
                        h[slot as usize] += 1.0;
                    }
                },
            ),
        }
    }

    /// The shared per-record body of [`ingest_query_run`](Self::ingest_query_run),
    /// generic over the cell fold so each store kind gets its own compiled
    /// inner loop.
    #[inline]
    fn fold_run(
        second: i64,
        events: &[TelemetryEvent],
        catalog: &TemplateCatalog,
        records: &mut VecDeque<QueryRecord>,
        records_sorted: &mut bool,
        stats: &mut IngestStats,
        mut fold_cell: impl FnMut(u32, f64, f64),
    ) {
        records.reserve(events.len());
        for ev in events {
            let TelemetryEvent::Query(rec) = ev else {
                debug_assert!(false, "non-query event in a query run");
                continue;
            };
            debug_assert_eq!(
                (rec.start_ms / 1000.0).floor() as i64,
                second,
                "query run crosses a second boundary"
            );
            if !rec.response_ms.is_finite() {
                stats.malformed += 1;
                continue;
            }
            stats.queries += 1;
            fold_cell(catalog.slot_of_spec(rec.spec), rec.response_ms, rec.examined_rows as f64);
            if records.back().is_some_and(|b| rec.start_ms < b.start_ms) {
                *records_sorted = false;
            }
            records.push_back(*rec);
        }
    }

    /// Stores one per-second metric sample. A sample for a second already
    /// held replaces it; gaps are zero-filled so the ring stays contiguous
    /// (a monitoring gap reads as "no load", matching the batch slicer).
    pub fn ingest_metrics(&mut self, sample: MetricsSample) {
        let second = sample.second;
        if self.metrics.is_empty() {
            self.metrics_start = second;
            self.on_session_change(second, None, finite(sample.active_session));
            self.metrics.push_back(sample);
        } else if second < self.metrics_start {
            self.stats.late += 1;
            return;
        } else {
            let idx = (second - self.metrics_start) as usize;
            while self.metrics.len() < idx {
                let missing = self.metrics_start + self.metrics.len() as i64;
                // A zero-filled gap is a cut no-op beyond the resident
                // count: an absent second already read as session 0.
                self.on_session_change(missing, None, 0.0);
                self.metrics.push_back(MetricsSample { second: missing, ..Default::default() });
            }
            if idx < self.metrics.len() {
                let old = finite(self.metrics[idx].active_session);
                self.on_session_change(second, Some(old), finite(sample.active_session));
                self.metrics[idx] = sample;
            } else {
                self.on_session_change(second, None, finite(sample.active_session));
                self.metrics.push_back(sample);
            }
        }
        // A sample for second `s` is published once `s` has fully elapsed.
        self.advance_watermark(second + 1);
    }

    /// Cut-moment bookkeeping for a metric second becoming resident
    /// (`old = None`) or being replaced: the session moments move
    /// `old → new`, and every template with a resident cell at `second`
    /// gets its co-sum corrected by `count·(new − old)` — one sweep of
    /// that second's compact cell row, the same cost ingesting the row
    /// paid.
    fn on_session_change(&mut self, second: i64, old: Option<f64>, new: f64) {
        if !self.cut_state.enabled {
            return;
        }
        if let Some(old) = old {
            self.cut_state.sessions.evict(old);
        }
        self.cut_state.sessions.push(new);
        self.cut_state.pushed += 1;
        let delta = new - old.unwrap_or(0.0);
        if delta != 0.0 {
            if let Some(idx) = self.cell_index(second) {
                let Self { cells, cut_state, .. } = self;
                cells.for_each(idx, |slot, cell| {
                    cut_state.sxy[slot as usize] += cell.0 * delta;
                });
            }
        }
    }

    /// Advances the watermark: folds completed minutes into the history
    /// store, then evicts state behind the retention horizon.
    pub fn advance_watermark(&mut self, second: i64) {
        if self.watermark != i64::MIN && second <= self.watermark {
            return;
        }
        self.watermark = second;
        self.fold_history();
        self.enforce_retention();
    }

    /// The current watermark (`i64::MIN` before any event).
    pub fn watermark(&self) -> i64 {
        self.watermark
    }

    /// The template catalog the aggregator attributes records with.
    pub fn catalog(&self) -> &TemplateCatalog {
        &self.catalog
    }

    /// Ingestion counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The in-line per-template 1-minute execution history.
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// `#execution` for a template at an absolute second (0 outside the
    /// retained horizon) — the counter the online detector-side pollers
    /// read.
    pub fn executions(&self, id: SqlId, second: i64) -> f64 {
        let Some(idx) = self.cell_index(second) else { return 0.0 };
        let Some(slot) = self.catalog.slot_of_id(id) else { return 0.0 };
        self.cells.get(idx, slot).map_or(0.0, |c| c.0)
    }

    /// Number of 1-second cell slots currently held (bounded-memory
    /// invariant: never exceeds `retention_s` once the stream is longer
    /// than the horizon).
    pub fn cell_seconds(&self) -> usize {
        self.cells.len()
    }

    /// Number of raw records currently retained.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Number of metric samples currently retained.
    pub fn metric_seconds(&self) -> usize {
        self.metrics.len()
    }

    /// Re-assembles the batch-equivalent [`CaseData`] for the collection
    /// window `[ts, te)`.
    ///
    /// For any window fully inside the retention horizon of a time-ordered
    /// stream, the result is bit-identical to
    /// [`aggregate_case`](crate::aggregate_case) over the full trace (see
    /// module docs). Windows reaching beyond the retained metrics are
    /// clipped exactly the way the batch slicer clips to available data.
    ///
    /// Takes `&mut self` only to reuse the slot-position scratch buffer
    /// across calls; observable state is untouched.
    ///
    /// # Panics
    /// Panics if `te <= ts` (empty collection window), like the batch path.
    pub fn snapshot(&mut self, ts: i64, te: i64) -> CaseData {
        assert!(te > ts, "empty collection window");
        let n = (te - ts) as usize;
        let ts_ms = ts as f64 * 1000.0;
        let te_ms = te as f64 * 1000.0;

        // One sweep over the window's touched cells yields each template's
        // execution-count moments. Membership and sizing then need no
        // record re-scan: a template is in the window iff it has a touched
        // cell there (every retained record has its cell row — they share
        // one retention horizon), and its exact record count is the
        // integer-exact count sum. So `templates` and `records` are built
        // at final size, and the per-record loop below is a push into
        // pre-sized vectors.
        let touched = self.sweep_window_moments(ts, te);
        let window_records: usize = touched.iter().map(|(_, m)| m.sum() as usize).sum();
        let mut templates: Vec<TemplateData> = touched
            .iter()
            .map(|&(slot, ref m)| TemplateData {
                id: self.catalog.id_of_slot(slot),
                series: TemplateSeries::zeros(ts, n),
                record_idx: Vec::with_capacity(m.sum() as usize),
            })
            .collect();

        let want_cut = self.cut_state.enabled;
        let Self { records: ring, records_sorted, slot_pos, catalog, cells, cells_start, .. } =
            &mut *self;
        let cells_start = *cells_start;
        let mut records: Vec<QueryRecord> = Vec::with_capacity(window_records);
        {
            // Window records in arrival order (on a time-ordered stream
            // this is the batch path's filter-then-stable-sort order). The
            // `slot_pos` scratch — populated by the sweep above — maps each
            // dense slot to its template's position; the create-on-miss arm
            // is unreachable for consistent state and kept as a graceful
            // fallback.
            let mut push_rec = |rec: &QueryRecord| {
                let slot = catalog.slot_of_spec(rec.spec) as usize;
                let tpl = if slot_pos[slot] == u32::MAX {
                    debug_assert!(false, "window record without a window cell");
                    slot_pos[slot] = templates.len() as u32;
                    templates.push(TemplateData {
                        id: catalog.id_of_slot(slot as u32),
                        series: TemplateSeries::zeros(ts, n),
                        record_idx: Vec::new(),
                    });
                    templates.last_mut().expect("just pushed")
                } else {
                    &mut templates[slot_pos[slot] as usize]
                };
                tpl.record_idx.push(records.len() as u32);
                records.push(*rec);
            };
            if *records_sorted {
                // Sorted ring: binary-search the window bounds instead of
                // scanning the whole retention horizon. Same records, same
                // order as the filter below.
                let lo_idx = ring.partition_point(|r| r.start_ms < ts_ms);
                let hi_idx = ring.partition_point(|r| r.start_ms < te_ms);
                for rec in ring.range(lo_idx..hi_idx) {
                    push_rec(rec);
                }
            } else {
                for rec in ring.iter() {
                    if rec.start_ms >= ts_ms && rec.start_ms < te_ms {
                        push_rec(rec);
                    }
                }
            }
        }

        // Series values come straight from the cells: each `(template,
        // second)` cell was accumulated record-by-record at ingest, in the
        // same order the batch aggregator sums, so assignment (not
        // re-accumulation) preserves bit-identity. With the incremental cut
        // on, the same sweep buckets each template's counts into complete
        // minutes — ascending seconds, zeros contributing nothing, exactly
        // the partial sums `TemplateSeries::per_minute` produces — so no
        // per-template re-scan ever derives the matrix rows.
        let n_minutes = n / 60;
        let mut minute_rows: Vec<Vec<f64>> = if want_cut {
            templates.iter().map(|_| vec![0.0; n_minutes]).collect()
        } else {
            Vec::new()
        };
        let lo = ts.max(cells_start);
        let hi = te.min(cells_start + cells.len() as i64);
        for s in lo..hi {
            let idx = (s - ts) as usize;
            let bucket = idx / 60;
            cells.for_each((s - cells_start) as usize, |slot, cell| {
                let pos = slot_pos[slot as usize];
                if pos != u32::MAX {
                    let series = &mut templates[pos as usize].series;
                    series.execution_count[idx] = cell.0;
                    series.total_rt_ms[idx] = cell.1;
                    series.examined_rows[idx] = cell.2;
                    if want_cut && bucket < n_minutes {
                        minute_rows[pos as usize][bucket] += cell.0;
                    }
                }
            });
        }

        // The sort below reorders `templates`, so the cut rows pair with
        // their ids first and sort the same way — they must stay parallel.
        let cut = if want_cut && minute_rows.len() == templates.len() {
            let gate = self.window_gate(ts, te, &touched);
            let mut entries: Vec<(SqlId, Vec<f64>, f64)> = Vec::with_capacity(templates.len());
            for ((tpl, row), g) in templates.iter().zip(minute_rows).zip(gate) {
                entries.push((tpl.id, row, g));
            }
            entries.sort_by_key(|(id, _, _)| *id);
            let mut cut = WindowCut {
                minute_start: ts.div_euclid(60),
                minute_rows: Vec::with_capacity(entries.len()),
                gate: Vec::with_capacity(entries.len()),
                moments_pushed: self.cut_state.pushed,
                moments_evicted: self.cut_state.evicted,
            };
            for (_, row, g) in entries {
                cut.minute_rows.push(row);
                cut.gate.push(g);
            }
            Some(Box::new(cut))
        } else {
            None
        };

        templates.sort_by_key(|t| t.id);

        CaseData {
            ts,
            te,
            catalog: self.catalog.clone(),
            metrics: self.window_metrics(ts, te),
            records,
            templates,
            cut,
        }
    }

    /// Advisory template↔active-session Pearson for every window template,
    /// assembled from the running ingest-time moments. Window sums are the
    /// resident totals minus the contributions of resident seconds
    /// *outside* `[ts, te)` (the complement trick), so the work is bounded
    /// by the retention slack plus one pass over the templates — never by
    /// the window itself.
    fn window_gate(&self, ts: i64, te: i64, touched: &[(u32, MomentAccumulator)]) -> Vec<f64> {
        let n_slots = self.catalog.n_slots();
        let mut out_counts = vec![MomentAccumulator::default(); n_slots];
        let mut out_sxy = vec![0.0f64; n_slots];
        let mut out_sessions = MomentAccumulator::default();
        for s in self.cells_start..self.cells_start + self.cells.len() as i64 {
            if s >= ts && s < te {
                continue;
            }
            let session = self.session_at(s);
            self.cells.for_each((s - self.cells_start) as usize, |slot, cell| {
                out_counts[slot as usize].push(cell.0);
                out_sxy[slot as usize] += cell.0 * session;
            });
        }
        for s in self.metrics_start..self.metrics_start + self.metrics.len() as i64 {
            if s >= ts && s < te {
                continue;
            }
            out_sessions
                .push(finite(self.metrics[(s - self.metrics_start) as usize].active_session));
        }
        let mut win_sessions = self.cut_state.sessions;
        win_sessions.unmerge(&out_sessions);
        // Pearson over the window's full length: absent seconds are zeros,
        // which contribute nothing to any sum, so passing `te − ts` as `n`
        // *is* the zero-filled series.
        let n_win = (te - ts) as u64;
        touched
            .iter()
            .map(|&(slot, _)| {
                let mut m = self.cut_state.counts[slot as usize];
                m.unmerge(&out_counts[slot as usize]);
                let sxy = self.cut_state.sxy[slot as usize] - out_sxy[slot as usize];
                CoMomentAccumulator::from_sums(
                    n_win,
                    m.sum(),
                    win_sessions.sum(),
                    m.sum_sq(),
                    win_sessions.sum_sq(),
                    sxy,
                )
                .pearson()
            })
            .collect()
    }

    /// The active-session reading for a second, 0 while its sample is
    /// absent (never collected, gap-filled-then-replaced, or evicted).
    fn session_at(&self, second: i64) -> f64 {
        match Self::index_of(self.metrics_start, self.metrics.len(), second) {
            Some(idx) => finite(self.metrics[idx].active_session),
            None => 0.0,
        }
    }

    /// Per-template first/second moments of the per-second execution
    /// counts inside `[ts, te)`, sorted by template id.
    ///
    /// One sweep over the window's *touched* cells; each template's
    /// count/sum/sum-of-squares (hence mean and variance over its active
    /// seconds) is then an O(1) finalize — no per-template re-scan. The
    /// accumulator's `n` counts the seconds the template actually executed
    /// in; callers wanting zero-inclusive means divide `sum()` by the
    /// window length instead. `snapshot` runs the same sweep to pre-size
    /// its output exactly.
    ///
    /// Takes `&mut self` only to reuse the slot-position scratch buffer.
    ///
    /// # Panics
    /// Panics if `te <= ts` (empty window), like [`snapshot`](Self::snapshot).
    pub fn window_moments(&mut self, ts: i64, te: i64) -> Vec<(SqlId, MomentAccumulator)> {
        assert!(te > ts, "empty collection window");
        let touched = self.sweep_window_moments(ts, te);
        let mut out: Vec<(SqlId, MomentAccumulator)> = touched
            .into_iter()
            .map(|(slot, m)| (self.catalog.id_of_slot(slot), m))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Sweeps the window's touched cells once, returning `(slot, moments)`
    /// in first-touch order and leaving `slot_pos[slot]` = position for
    /// every touched slot (callers use it as the template index map).
    fn sweep_window_moments(&mut self, ts: i64, te: i64) -> Vec<(u32, MomentAccumulator)> {
        self.slot_pos.clear();
        self.slot_pos.resize(self.catalog.n_slots(), u32::MAX);
        let slot_pos = &mut self.slot_pos;
        let mut touched: Vec<(u32, MomentAccumulator)> = Vec::new();
        let lo = ts.max(self.cells_start);
        let hi = te.min(self.cells_start + self.cells.len() as i64);
        for s in lo..hi {
            self.cells.for_each((s - self.cells_start) as usize, |slot, cell| {
                let pos = slot_pos[slot as usize];
                let acc = if pos == u32::MAX {
                    slot_pos[slot as usize] = touched.len() as u32;
                    touched.push((slot, MomentAccumulator::default()));
                    &mut touched.last_mut().expect("just pushed").1
                } else {
                    &mut touched[pos as usize].1
                };
                acc.push(cell.0);
            });
        }
        touched
    }

    /// The retained metrics restricted to `[ts, te)`, non-finite samples
    /// zeroed — the online analogue of the batch `slice_metrics`.
    fn window_metrics(&self, ts: i64, te: i64) -> InstanceMetrics {
        let lo = ts.max(self.metrics_start);
        let hi = te.min(self.metrics_start + self.metrics.len() as i64).max(lo);
        let len = (hi - lo) as usize;
        let mut out = InstanceMetrics {
            start_second: ts,
            active_session: Vec::with_capacity(len),
            cpu_usage: Vec::with_capacity(len),
            iops_usage: Vec::with_capacity(len),
            row_lock_waits: Vec::with_capacity(len),
            mdl_waits: Vec::with_capacity(len),
            qps: Vec::with_capacity(len),
            probes: ProbeLog::default(),
        };
        let finite = |x: f64| if x.is_finite() { x } else { 0.0 };
        for s in lo..hi {
            let sample = &self.metrics[(s - self.metrics_start) as usize];
            out.active_session.push(finite(sample.active_session));
            out.cpu_usage.push(finite(sample.cpu_usage));
            out.iops_usage.push(finite(sample.iops_usage));
            out.row_lock_waits.push(finite(sample.row_lock_waits));
            out.mdl_waits.push(finite(sample.mdl_waits));
            out.qps.push(finite(sample.qps));
            out.probes.samples.extend(sample.probes.iter().copied());
        }
        out
    }

    /// Ring row index for an absolute second, extending the contiguous
    /// ring as needed.
    fn row_index(&mut self, second: i64) -> usize {
        if self.cells.is_empty() {
            self.cells_start = second;
            self.cells.push_back();
            self.stats.cells += 1;
        } else if second < self.cells_start {
            // Out-of-order record older than the ring's start but inside
            // the retention horizon: prepend rows (rare; channel drivers
            // with racing producers).
            for _ in 0..(self.cells_start - second) {
                self.cells.push_front();
                self.stats.cells += 1;
            }
            self.cells_start = second;
        } else {
            let idx = (second - self.cells_start) as usize;
            while self.cells.len() <= idx {
                self.cells.push_back();
                self.stats.cells += 1;
            }
        }
        (second - self.cells_start) as usize
    }

    /// Folds every fully-elapsed minute's execution counts into the
    /// history store from the at-ingest accumulator (see [`MinuteAcc`]).
    fn fold_history(&mut self) {
        if self.cells.is_empty() {
            return;
        }
        let mut next = self
            .history_next_min
            .unwrap_or_else(|| self.cells_start.div_euclid(60));
        while (next + 1) * 60 <= self.watermark {
            let minute = next;
            next += 1;
            self.stats.history_minutes += 1;
            let Some(counts) = self.minute_acc.take(minute) else {
                continue;
            };
            // Slot-order emission is deterministic and identical for both
            // cell-store kinds (the dense counts row folded away any
            // arrival order); each slot resolves its history entry index
            // once ever, so steady-state recording is a direct vector
            // index per (template, minute), no hashing.
            self.slot_hist.resize(self.catalog.n_slots(), u32::MAX);
            for (slot, &count) in counts.iter().enumerate() {
                if count > 0.0 {
                    let entry = &mut self.slot_hist[slot];
                    if *entry == u32::MAX {
                        *entry = self.history.entry_index(self.catalog.id_of_slot(slot as u32));
                    }
                    self.history.record_at(*entry, self.cfg.history_origin_min + minute, count);
                }
            }
            self.minute_acc.recycle(counts);
        }
        self.history_next_min = Some(next);
    }

    /// Evicts cells, records, and metric samples behind the retention
    /// horizon.
    fn enforce_retention(&mut self) {
        let horizon = self.watermark - self.cfg.retention_s;
        while !self.cells.is_empty() && self.cells_start < horizon {
            if self.cut_state.enabled {
                // Cell rows pop before metric rows (below), so the session
                // reading each count was folded against is still resident
                // here — the co-sum unwinds with the exact `y` it grew by.
                let session = self.session_at(self.cells_start);
                let Self { cells, cut_state, .. } = self;
                cells.for_each(0, |slot, cell| cut_state.evict_cell(slot, cell.0, session));
            }
            self.cells.pop_front();
            self.cells_start += 1;
            self.stats.evictions += 1;
        }
        if self.cells.is_empty() {
            self.cells_start = self.cells_start.max(horizon);
        }
        while !self.metrics.is_empty() && self.metrics_start < horizon {
            if self.cut_state.enabled {
                // The second's cell row is already gone, so only the
                // session moments shrink; the per-slot co-sums hold no
                // contribution from it anymore.
                let old = finite(self.metrics.front().expect("checked non-empty").active_session);
                self.cut_state.sessions.evict(old);
                self.cut_state.evicted += 1;
            }
            self.metrics.pop_front();
            self.metrics_start += 1;
            self.stats.evictions += 1;
        }
        let horizon_ms = horizon as f64 * 1000.0;
        while let Some(front) = self.records.front() {
            if front.start_ms < horizon_ms {
                self.records.pop_front();
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
        if self.records.is_empty() {
            // An emptied ring is trivially sorted again; late disorder
            // stops poisoning the binary-search fast path forever.
            self.records_sorted = true;
        }
    }

    /// The active cut path.
    pub fn cut(&self) -> CutKind {
        self.cfg.cut
    }

    /// Running cut-moment counters `(pushed, evicted)` for observability;
    /// both zero on the reference path.
    pub fn cut_moments(&self) -> (u64, u64) {
        (self.cut_state.pushed, self.cut_state.evicted)
    }

    /// Flips the cut path at runtime (daemon config pushes): switching to
    /// `Incremental` rebuilds the running moments from the resident rings,
    /// switching to `Reference` drops them. A no-op when already on `kind`.
    pub fn set_cut(&mut self, kind: CutKind) {
        if self.cfg.cut == kind {
            return;
        }
        self.cfg.cut = kind;
        self.rebuild_cut_state();
    }

    /// Rebuilds the running cut moments from the resident cell and metric
    /// rings — the switch-on path for [`set_cut`](Self::set_cut) and the
    /// fallback for checkpoints that predate the cut-state section. On the
    /// reference path this just drops any tracker state.
    pub fn rebuild_cut_state(&mut self) {
        if self.cfg.cut != CutKind::Incremental {
            self.cut_state = CutTracker::default();
            return;
        }
        let mut t = CutTracker::new(true, self.catalog.n_slots());
        for s in self.cells_start..self.cells_start + self.cells.len() as i64 {
            let session = self.session_at(s);
            self.cells.for_each((s - self.cells_start) as usize, |slot, cell| {
                t.counts[slot as usize].push(cell.0);
                t.sxy[slot as usize] += cell.0 * session;
                t.pushed += 1;
            });
        }
        for sample in &self.metrics {
            t.sessions.push(finite(sample.active_session));
            t.pushed += 1;
        }
        self.cut_state = t;
    }

    /// Serializes the running cut-moment state. This is deliberately *not*
    /// part of [`write_snapshot`](Self::write_snapshot): the engine
    /// checkpoints it as its own versioned envelope section, so the
    /// aggregator body stays decodable by pre-cut readers. All sums travel
    /// as raw bits; a restore through [`read_cut_state`](Self::read_cut_state)
    /// re-serializes byte-identically.
    pub fn write_cut_state(&self, w: &mut WireWriter) {
        w.put_u8(match self.cfg.cut {
            CutKind::Reference => 0,
            CutKind::Incremental => 1,
        });
        let t = &self.cut_state;
        w.put_len(t.counts.len());
        for m in &t.counts {
            w.put_u64(m.count());
            w.put_f64(m.sum());
            w.put_f64(m.sum_sq());
        }
        for &v in &t.sxy {
            w.put_f64(v);
        }
        w.put_u64(t.sessions.count());
        w.put_f64(t.sessions.sum());
        w.put_f64(t.sessions.sum_sq());
        w.put_u64(t.pushed);
        w.put_u64(t.evicted);
    }

    /// Restores the cut path and running moments written by
    /// [`write_cut_state`](Self::write_cut_state), replacing whatever the
    /// aggregator currently holds. Corruption is a typed [`WireError`]:
    /// an unknown cut tag is a `BadTag`, a slot-count mismatch against the
    /// catalog is a `Mismatch`, truncation is the reader's underflow error.
    pub fn read_cut_state(&mut self, r: &mut WireReader) -> Result<(), WireError> {
        let kind = match r.get_u8()? {
            0 => CutKind::Reference,
            1 => CutKind::Incremental,
            v => return Err(WireError::BadTag { what: "cut kind", value: v as u64 }),
        };
        let n = r.get_len(24)?;
        let expect = if kind == CutKind::Incremental { self.catalog.n_slots() } else { 0 };
        if n != expect {
            return Err(WireError::Mismatch {
                what: "cut state",
                detail: format!("{n} slot moments, expected {expect}"),
            });
        }
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            counts.push(MomentAccumulator::from_sums(r.get_u64()?, r.get_f64()?, r.get_f64()?));
        }
        let mut sxy = Vec::with_capacity(n);
        for _ in 0..n {
            sxy.push(r.get_f64()?);
        }
        let sessions = MomentAccumulator::from_sums(r.get_u64()?, r.get_f64()?, r.get_f64()?);
        let pushed = r.get_u64()?;
        let evicted = r.get_u64()?;
        self.cfg.cut = kind;
        self.cut_state = CutTracker {
            enabled: kind == CutKind::Incremental,
            counts,
            sxy,
            sessions,
            pushed,
            evicted,
        };
        Ok(())
    }

    /// Serializes the aggregator's complete online state into `w` (the
    /// checkpoint body — the engine wraps it in a magic/version envelope).
    ///
    /// Everything observable is written verbatim: configuration, the
    /// catalog's slot→id assignment (as a restore-time consistency check —
    /// the catalog itself is rebuilt deterministically from the workload
    /// specs), counters, the record/cell/metric rings, the history store,
    /// and the in-flight minute accumulator. All `f64`s travel as raw bits,
    /// so restore never re-derives a float. Caches (the slot→history index,
    /// the snapshot scratch, cell-row free lists, the shared write table)
    /// are rebuilt lazily after restore and are deliberately absent.
    pub fn write_snapshot(&self, w: &mut WireWriter) {
        w.put_i64(self.cfg.retention_s);
        w.put_i64(self.cfg.history_origin_min);
        w.put_u8(match self.cfg.cell_store {
            CellStoreKind::Dense => 0,
            CellStoreKind::Hashed => 1,
        });
        let n_slots = self.catalog.n_slots();
        w.put_len(n_slots);
        for slot in 0..n_slots {
            w.put_u64(self.catalog.id_of_slot(slot as u32).0);
        }
        for c in [
            self.stats.events,
            self.stats.queries,
            self.stats.malformed,
            self.stats.late,
            self.stats.cells,
            self.stats.evictions,
            self.stats.history_minutes,
        ] {
            w.put_u64(c);
        }
        w.put_i64(self.watermark);
        w.put_bool(self.records_sorted);
        w.put_len(self.records.len());
        for rec in &self.records {
            w.put_u64(rec.spec.0 as u64);
            w.put_f64(rec.start_ms);
            w.put_f64(rec.response_ms);
            w.put_u64(rec.examined_rows);
        }
        w.put_i64(self.cells_start);
        w.put_len(self.cells.len());
        for idx in 0..self.cells.len() {
            let mut row: Vec<(u32, Cell)> = Vec::new();
            self.cells.for_each(idx, |slot, cell| row.push((slot, cell)));
            w.put_len(row.len());
            for (slot, cell) in row {
                w.put_u32(slot);
                w.put_f64(cell.0);
                w.put_f64(cell.1);
                w.put_f64(cell.2);
            }
        }
        w.put_i64(self.metrics_start);
        w.put_len(self.metrics.len());
        for sample in &self.metrics {
            w.put_i64(sample.second);
            for v in sample.metric_values() {
                w.put_f64(v);
            }
            w.put_len(sample.probes.len());
            for p in &sample.probes {
                w.put_i64(p.second);
                w.put_u32(p.active_sessions);
                w.put_f64(p.true_instant_ms);
            }
        }
        w.put_len(self.history.len());
        for series in self.history.iter() {
            w.put_u64(series.id.0);
            w.put_i64(series.start_minute);
            w.put_len(series.executions.len());
            for &v in &series.executions {
                w.put_f64(v);
            }
        }
        w.put_bool(self.history_next_min.is_some());
        w.put_i64(self.history_next_min.unwrap_or(0));
        w.put_i64(self.minute_acc.start);
        w.put_len(self.minute_acc.rows.len());
        for row in &self.minute_acc.rows {
            w.put_len(row.len());
            for &v in row {
                w.put_f64(v);
            }
        }
    }

    /// Decodes a [`write_snapshot`](Self::write_snapshot) body back into a
    /// live aggregator over `specs` (the same workload specs the serialized
    /// instance was built from — checked against the stored slot→id
    /// assignment, so restoring into the wrong scenario is a typed
    /// [`WireError::Mismatch`], never silent misattribution).
    pub fn read_snapshot(specs: &[TemplateSpec], r: &mut WireReader) -> Result<Self, WireError> {
        let retention_s = r.get_i64()?;
        let history_origin_min = r.get_i64()?;
        let cell_store = match r.get_u8()? {
            0 => CellStoreKind::Dense,
            1 => CellStoreKind::Hashed,
            v => return Err(WireError::BadTag { what: "cellstore kind", value: v as u64 }),
        };
        if retention_s < 60 {
            return Err(WireError::Mismatch {
                what: "retention",
                detail: format!("{retention_s}s is below the 60s minimum"),
            });
        }
        let catalog = TemplateCatalog::from_specs(specs);
        let n_slots = r.get_len(8)?;
        if n_slots != catalog.n_slots() {
            return Err(WireError::Mismatch {
                what: "template catalog",
                detail: format!(
                    "snapshot has {n_slots} slots, scenario has {}",
                    catalog.n_slots()
                ),
            });
        }
        for slot in 0..n_slots {
            let id = r.get_u64()?;
            let expected = catalog.id_of_slot(slot as u32).0;
            if id != expected {
                return Err(WireError::Mismatch {
                    what: "template catalog",
                    detail: format!("slot {slot}: snapshot id {id:#x}, scenario id {expected:#x}"),
                });
            }
        }
        let mut counters = [0u64; 7];
        for c in &mut counters {
            *c = r.get_u64()?;
        }
        let stats = IngestStats {
            events: counters[0],
            queries: counters[1],
            malformed: counters[2],
            late: counters[3],
            cells: counters[4],
            evictions: counters[5],
            history_minutes: counters[6],
        };
        let watermark = r.get_i64()?;
        let records_sorted = r.get_bool()?;
        let n_records = r.get_len(32)?;
        let mut records = VecDeque::with_capacity(n_records);
        for _ in 0..n_records {
            let spec = r.get_u64()? as usize;
            if spec >= specs.len() {
                return Err(WireError::Mismatch {
                    what: "record spec",
                    detail: format!("spec index {spec} out of range ({})", specs.len()),
                });
            }
            records.push_back(QueryRecord {
                spec: pinsql_workload::SpecId(spec),
                start_ms: r.get_f64()?,
                response_ms: r.get_f64()?,
                examined_rows: r.get_u64()?,
            });
        }
        let cells_start = r.get_i64()?;
        let n_rows = r.get_len(8)?;
        let mut cells = CellStore::new(cell_store, catalog.n_slots());
        let mut row: Vec<(u32, Cell)> = Vec::new();
        for _ in 0..n_rows {
            let n_cells = r.get_len(28)?;
            row.clear();
            for _ in 0..n_cells {
                let slot = r.get_u32()?;
                if slot as usize >= n_slots {
                    return Err(WireError::Mismatch {
                        what: "cell slot",
                        detail: format!("slot {slot} out of range ({n_slots})"),
                    });
                }
                row.push((slot, (r.get_f64()?, r.get_f64()?, r.get_f64()?)));
            }
            cells.push_back_row(row.iter().copied());
        }
        let metrics_start = r.get_i64()?;
        let n_metrics = r.get_len(64)?;
        let mut metrics = VecDeque::with_capacity(n_metrics);
        for _ in 0..n_metrics {
            let second = r.get_i64()?;
            let mut vals = [0.0f64; 6];
            for v in &mut vals {
                *v = r.get_f64()?;
            }
            let n_probes = r.get_len(20)?;
            let mut probes = Vec::with_capacity(n_probes);
            for _ in 0..n_probes {
                probes.push(pinsql_dbsim::probe::ProbeSample {
                    second: r.get_i64()?,
                    active_sessions: r.get_u32()?,
                    true_instant_ms: r.get_f64()?,
                });
            }
            metrics.push_back(MetricsSample {
                second,
                active_session: vals[0],
                cpu_usage: vals[1],
                iops_usage: vals[2],
                row_lock_waits: vals[3],
                mdl_waits: vals[4],
                qps: vals[5],
                probes,
            });
        }
        let n_series = r.get_len(24)?;
        let mut history = HistoryStore::new();
        for _ in 0..n_series {
            let id = SqlId(r.get_u64()?);
            let start_minute = r.get_i64()?;
            let n = r.get_len(8)?;
            let mut executions = Vec::with_capacity(n);
            for _ in 0..n {
                executions.push(r.get_f64()?);
            }
            history.insert(crate::history::HistorySeries { id, start_minute, executions });
        }
        let has_next = r.get_bool()?;
        let next_min = r.get_i64()?;
        let history_next_min = has_next.then_some(next_min);
        let acc_start = r.get_i64()?;
        let n_acc_rows = r.get_len(8)?;
        let mut acc_rows = VecDeque::with_capacity(n_acc_rows);
        for _ in 0..n_acc_rows {
            let n = r.get_len(8)?;
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(r.get_f64()?);
            }
            acc_rows.push_back(counts);
        }
        // The body predates the cut knob, so the restored aggregator comes
        // up on the default path with moments rebuilt from the rings; the
        // engine's snapshot envelope overwrites both from its own cut
        // section when one is present.
        let mut agg = Self {
            catalog,
            cfg: IncrementalConfig {
                retention_s,
                history_origin_min,
                cell_store,
                cut: CutKind::default(),
            },
            records,
            records_sorted,
            cells,
            cells_start,
            metrics,
            metrics_start,
            watermark,
            history,
            history_next_min,
            stats,
            minute_acc: MinuteAcc { start: acc_start, rows: acc_rows, free: Vec::new() },
            slot_hist: Vec::new(),
            slot_pos: Vec::new(),
            cut_state: CutTracker::default(),
        };
        agg.rebuild_cut_state();
        Ok(agg)
    }

    /// The aggregator's configuration (the engine's snapshot envelope
    /// cross-checks its cell-store kind tag against this).
    pub fn config(&self) -> &IncrementalConfig {
        &self.cfg
    }

    fn cell_index(&self, second: i64) -> Option<usize> {
        Self::index_of(self.cells_start, self.cells.len(), second)
    }

    fn index_of(start: i64, len: usize, second: i64) -> Option<usize> {
        if second < start || second >= start + len as i64 {
            None
        } else {
            Some((second - start) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate_case;
    use pinsql_dbsim::interleave;
    use pinsql_workload::{CostProfile, SpecId, TableId};

    fn spec(sql: &str) -> TemplateSpec {
        TemplateSpec::new(sql, CostProfile::point_read(TableId(0)), "t")
    }

    fn rec(spec_idx: usize, start_ms: f64, rt: f64, rows: u64) -> QueryRecord {
        QueryRecord { spec: SpecId(spec_idx), start_ms, response_ms: rt, examined_rows: rows }
    }

    fn flat_metrics(start: i64, n: usize) -> InstanceMetrics {
        InstanceMetrics {
            start_second: start,
            active_session: (0..n).map(|i| 1.0 + (i % 3) as f64).collect(),
            cpu_usage: vec![0.25; n],
            iops_usage: vec![0.1; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![7.0; n],
            probes: ProbeLog::default(),
        }
    }

    fn assert_case_eq(a: &CaseData, b: &CaseData) {
        assert_eq!(a.ts, b.ts);
        assert_eq!(a.te, b.te);
        assert_eq!(a.records, b.records);
        assert_eq!(a.metrics.start_second, b.metrics.start_second);
        assert_eq!(a.metrics.active_session, b.metrics.active_session);
        assert_eq!(a.metrics.cpu_usage, b.metrics.cpu_usage);
        assert_eq!(a.metrics.iops_usage, b.metrics.iops_usage);
        assert_eq!(a.metrics.row_lock_waits, b.metrics.row_lock_waits);
        assert_eq!(a.metrics.mdl_waits, b.metrics.mdl_waits);
        assert_eq!(a.metrics.qps, b.metrics.qps);
        assert_eq!(a.metrics.probes.samples, b.metrics.probes.samples);
        assert_eq!(a.templates.len(), b.templates.len());
        for (x, y) in a.templates.iter().zip(&b.templates) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.record_idx, y.record_idx);
            assert_eq!(x.series.start, y.series.start);
            assert_eq!(x.series.execution_count, y.series.execution_count);
            assert_eq!(x.series.total_rt_ms, y.series.total_rt_ms);
            assert_eq!(x.series.examined_rows, y.series.examined_rows);
        }
    }

    #[test]
    fn snapshot_matches_batch_aggregation() {
        let specs = vec![
            spec("SELECT * FROM a WHERE x = 1"),
            spec("SELECT * FROM b WHERE x = 1"),
            spec("UPDATE c SET y = 1 WHERE x = 2"),
        ];
        // A jittery, unsorted log with out-of-window stragglers.
        let mut log = Vec::new();
        for i in 0..400 {
            let s = (i * 37) % 120;
            log.push(rec(i % 3, s as f64 * 1000.0 + (i % 7) as f64 * 133.7, 3.0 + i as f64, i as u64 % 5));
        }
        log.push(rec(0, -500.0, 1.0, 1));
        log.push(rec(1, 500_000.0, 1.0, 1));
        let metrics = flat_metrics(0, 120);

        let batch = aggregate_case(&log, &specs, &metrics, 20, 100);

        for kind in [CellStoreKind::Dense, CellStoreKind::Hashed] {
            let mut agg = IncrementalAggregator::new(
                &specs,
                IncrementalConfig::default().with_cell_store(kind),
            );
            for ev in interleave(&log, &metrics) {
                agg.ingest(ev);
            }
            let online = agg.snapshot(20, 100);
            assert_case_eq(&online, &batch);
        }
    }

    #[test]
    fn chunked_ingest_matches_scalar_ingest() {
        let specs = vec![
            spec("SELECT * FROM a WHERE x = 1"),
            spec("SELECT * FROM b WHERE x = 1"),
        ];
        let mut log = Vec::new();
        for i in 0..300 {
            let s = (i * 13) % 90;
            log.push(rec(i % 2, s as f64 * 1000.0 + (i % 11) as f64 * 90.9, 2.0 + i as f64, i as u64 % 3));
        }
        // A malformed record mid-stream exercises the run-splitting rules.
        log.push(rec(0, f64::NAN, 1.0, 0));
        log.push(rec(1, 10_500.0, f64::INFINITY, 0));
        let metrics = flat_metrics(0, 90);
        let events = interleave(&log, &metrics);

        let mut scalar = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        for ev in events.clone() {
            scalar.ingest(ev);
        }
        let mut chunked = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        let mut buf = events;
        chunked.ingest_drain(&mut buf);
        assert!(buf.is_empty(), "drain clears the reusable buffer");

        let s = scalar.stats();
        let c = chunked.stats();
        assert_eq!(s.events, c.events);
        assert_eq!(s.queries, c.queries);
        assert_eq!(s.malformed, c.malformed);
        assert_eq!(s.late, c.late);
        assert_eq!(scalar.watermark(), chunked.watermark());
        assert_case_eq(&scalar.snapshot(0, 90), &chunked.snapshot(0, 90));
    }

    #[test]
    fn snapshot_windows_are_reusable_and_nested() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let log: Vec<QueryRecord> =
            (0..600).map(|i| rec(0, i as f64 * 100.0, 2.0, 1)).collect();
        let metrics = flat_metrics(0, 60);
        let mut agg = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        for ev in interleave(&log, &metrics) {
            agg.ingest(ev);
        }
        for (ts, te) in [(0, 60), (10, 50), (30, 31)] {
            let batch = aggregate_case(&log, &specs, &metrics, ts, te);
            assert_case_eq(&agg.snapshot(ts, te), &batch);
        }
    }

    #[test]
    fn malformed_records_are_dropped() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let mut agg = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        agg.ingest_query(rec(0, f64::NAN, 1.0, 0));
        agg.ingest_query(rec(0, 100.0, f64::INFINITY, 0));
        agg.ingest_query(rec(0, 100.0, 1.0, 0));
        assert_eq!(agg.stats().malformed, 2);
        assert_eq!(agg.record_count(), 1);
    }

    #[test]
    fn memory_stays_within_retention_horizon() {
        // The regression this type exists for: the old streaming
        // aggregator's `(template, second)` map grew without bound.
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1"), spec("SELECT 2 FROM u WHERE id = 1")];
        let retention = 300;
        let mut agg = IncrementalAggregator::new(
            &specs,
            IncrementalConfig::default().with_retention(retention),
        );
        let horizon_s = 20_000i64;
        for s in 0..horizon_s {
            agg.ingest(TelemetryEvent::Query(rec((s % 2) as usize, s as f64 * 1000.0 + 1.0, 2.0, 1)));
            agg.ingest(TelemetryEvent::Metrics(Box::new(MetricsSample {
                second: s,
                active_session: 1.0,
                ..Default::default()
            })));
            agg.ingest(TelemetryEvent::Tick { second: s + 1 });
            assert!(agg.cell_seconds() <= retention as usize + 1, "at {s}");
            assert!(agg.metric_seconds() <= retention as usize + 1, "at {s}");
            assert!(agg.record_count() <= retention as usize + 1, "at {s}");
        }
        // Still serves windows inside the horizon.
        let case = agg.snapshot(horizon_s - 100, horizon_s);
        assert_eq!(case.n_seconds(), 100);
        assert_eq!(case.records.len(), 100);
    }

    #[test]
    fn history_feed_folds_complete_minutes() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let origin = 5000;
        let mut agg = IncrementalAggregator::new(
            &specs,
            IncrementalConfig::default().with_history_origin(origin),
        );
        // Two executions per second for 150 s: minutes 0 and 1 complete
        // (120 each), minute 2 still open.
        for s in 0..150i64 {
            agg.ingest_query(rec(0, s as f64 * 1000.0, 1.0, 0));
            agg.ingest_query(rec(0, s as f64 * 1000.0 + 500.0, 1.0, 0));
            agg.advance_watermark(s + 1);
        }
        let id = agg.catalog().id_of_spec(SpecId(0));
        assert_eq!(agg.history().window_filled(id, origin, origin + 2), vec![120.0, 120.0]);
        assert_eq!(agg.history().window_filled(id, origin + 2, origin + 3), vec![0.0]);
        // Closing the third minute folds it.
        agg.advance_watermark(180);
        assert_eq!(agg.history().window_filled(id, origin + 2, origin + 3), vec![60.0]);
    }

    #[test]
    fn fold_and_eviction_counters_track_state() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let retention = 120;
        let mut agg = IncrementalAggregator::new(
            &specs,
            IncrementalConfig::default().with_retention(retention),
        );
        for s in 0..300i64 {
            agg.ingest_query(rec(0, s as f64 * 1000.0, 1.0, 0));
            agg.advance_watermark(s + 1);
        }
        let stats = agg.stats();
        // One cell row per second, monotone even though only `retention`
        // rows stay resident.
        assert_eq!(stats.cells, 300);
        assert!(agg.cell_seconds() <= retention as usize + 1);
        // Evictions cover the cells and records pushed past the horizon.
        assert!(stats.evictions > 0);
        assert_eq!(
            stats.evictions,
            (300 - agg.cell_seconds() as u64) + (300 - agg.record_count() as u64)
        );
        // 300 s = 5 minutes; the last one is complete at watermark 300.
        assert_eq!(stats.history_minutes, 5);
    }

    #[test]
    fn chunked_ingest_matches_scalar_fold_counters() {
        let specs =
            vec![spec("SELECT * FROM a WHERE x = 1"), spec("SELECT * FROM b WHERE x = 1")];
        let mut log = Vec::new();
        for i in 0..200 {
            let s = (i * 31) % 70;
            log.push(rec(i % 2, s as f64 * 1000.0 + (i % 13) as f64 * 71.3, 2.0, 1));
        }
        let metrics = flat_metrics(0, 70);
        let events = interleave(&log, &metrics);
        let mut scalar = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        for ev in events.clone() {
            scalar.ingest(ev);
        }
        let mut chunked = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        let mut buf = events;
        chunked.ingest_drain(&mut buf);
        let s = scalar.stats();
        let c = chunked.stats();
        assert_eq!(s.cells, c.cells, "rows created, not calls, are counted");
        assert_eq!(s.evictions, c.evictions);
        assert_eq!(s.history_minutes, c.history_minutes);
    }

    #[test]
    fn window_moments_match_snapshot_series() {
        let specs = vec![
            spec("SELECT * FROM a WHERE x = 1"),
            spec("SELECT * FROM b WHERE x = 1"),
        ];
        let mut log = Vec::new();
        for i in 0..240 {
            let s = (i * 7) % 60;
            log.push(rec(i % 2, s as f64 * 1000.0 + (i % 5) as f64 * 100.0, 2.0, 1));
        }
        let metrics = flat_metrics(0, 60);
        for kind in [CellStoreKind::Dense, CellStoreKind::Hashed] {
            let mut agg = IncrementalAggregator::new(
                &specs,
                IncrementalConfig::default().with_cell_store(kind),
            );
            for ev in interleave(&log, &metrics) {
                agg.ingest(ev);
            }
            let moments = agg.window_moments(10, 50);
            let case = agg.snapshot(10, 50);
            assert_eq!(moments.len(), case.templates.len());
            for ((id, m), tpl) in moments.iter().zip(&case.templates) {
                assert_eq!(*id, tpl.id, "sorted by id, like snapshot templates");
                let counts = &tpl.series.execution_count;
                let active = counts.iter().filter(|&&c| c > 0.0).count() as u64;
                let total: f64 = counts.iter().sum();
                let sumsq: f64 = counts.iter().map(|c| c * c).sum();
                assert_eq!(m.count(), active);
                assert_eq!(m.sum(), total, "integer count sums are exact");
                assert_eq!(m.sum_sq(), sumsq);
                assert_eq!(m.sum() as usize, tpl.record_idx.len(), "exact presize");
            }
        }
    }

    #[test]
    fn per_variant_entry_points_match_ingest() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let log: Vec<QueryRecord> = (0..120).map(|i| rec(0, i as f64 * 500.0, 2.0, 1)).collect();
        let metrics = flat_metrics(0, 60);
        let events = interleave(&log, &metrics);

        let mut whole = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        for ev in events.clone() {
            whole.ingest(ev);
        }
        let mut split = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        for ev in events {
            match ev {
                TelemetryEvent::Query(rec) => split.ingest_query_event(rec),
                TelemetryEvent::Metrics(sample) => split.ingest_metrics_event(*sample),
                TelemetryEvent::Tick { second } => split.ingest_tick(second),
            }
        }
        assert_eq!(whole.stats(), split.stats());
        assert_eq!(whole.watermark(), split.watermark());
        assert_case_eq(&whole.snapshot(0, 60), &split.snapshot(0, 60));
    }

    #[test]
    fn sorted_and_unsorted_record_paths_agree() {
        let specs = vec![
            spec("SELECT * FROM a WHERE x = 1"),
            spec("SELECT * FROM b WHERE x = 1"),
        ];
        // Sorted prefix, then one straggler flips the ring to unsorted.
        let mut log: Vec<QueryRecord> =
            (0..200).map(|i| rec(i % 2, i as f64 * 300.0, 2.0, 1)).collect();
        let mut sorted_agg = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        for r in &log {
            sorted_agg.ingest_query(*r);
        }
        sorted_agg.advance_watermark(60);
        let fast = sorted_agg.snapshot(5, 55);

        log.push(rec(0, 100.0, 9.0, 1)); // out of order, outside [5, 55)
        let mut unsorted_agg = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        for r in &log {
            unsorted_agg.ingest_query(*r);
        }
        unsorted_agg.advance_watermark(60);
        let slow = unsorted_agg.snapshot(5, 55);
        assert_case_eq(&fast, &slow);
    }

    #[test]
    fn metrics_gaps_zero_fill() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let mut agg = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        agg.ingest_metrics(MetricsSample { second: 0, active_session: 4.0, ..Default::default() });
        agg.ingest_metrics(MetricsSample { second: 3, active_session: 9.0, ..Default::default() });
        let case = agg.snapshot(0, 4);
        assert_eq!(case.metrics.active_session, vec![4.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn executions_counter_reads_cells() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let mut agg = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        let id = agg.catalog().id_of_spec(SpecId(0));
        agg.ingest_query(rec(0, 1500.0, 4.0, 2));
        agg.ingest_query(rec(0, 1999.0, 6.0, 4));
        agg.ingest_query(rec(0, 2000.0, 1.0, 1));
        assert_eq!(agg.executions(id, 1), 2.0);
        assert_eq!(agg.executions(id, 2), 1.0);
        assert_eq!(agg.executions(id, 3), 0.0);
    }

    #[test]
    fn cell_store_kinds_agree_on_out_of_order_streams() {
        let specs = vec![
            spec("SELECT * FROM a WHERE x = 1"),
            spec("SELECT * FROM b WHERE x = 1"),
        ];
        // Deliberately unsorted arrivals, including a prepend below the
        // ring start — the channel-driver shape interleave never emits.
        let log = vec![
            rec(0, 5_100.0, 2.0, 1),
            rec(1, 1_200.0, 3.0, 2),
            rec(0, 5_050.0, 4.0, 0),
            rec(1, 9_900.0, 5.0, 3),
            rec(0, 0.0, 6.0, 1),
        ];
        let mut dense = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        let mut hashed = IncrementalAggregator::new(
            &specs,
            IncrementalConfig::default().with_cell_store(CellStoreKind::Hashed),
        );
        for r in &log {
            dense.ingest_query(*r);
            hashed.ingest_query(*r);
        }
        dense.advance_watermark(10);
        hashed.advance_watermark(10);
        assert_case_eq(&dense.snapshot(0, 10), &hashed.snapshot(0, 10));
        for s in 0..10 {
            for spec_idx in 0..2 {
                let id = dense.catalog().id_of_spec(SpecId(spec_idx));
                assert_eq!(dense.executions(id, s), hashed.executions(id, s), "s={s}");
            }
        }
    }
    #[test]
    fn checkpoint_round_trip_is_behaviorally_exact() {
        use pinsql_timeseries::{WireReader, WireWriter};
        let specs = vec![
            spec("SELECT * FROM a WHERE x = 1"),
            spec("SELECT * FROM b WHERE x = 1"),
            spec("UPDATE c SET v = v + 1 WHERE id = 1"),
        ];
        for kind in [CellStoreKind::Dense, CellStoreKind::Hashed] {
            let cfg = IncrementalConfig::default().with_retention(120).with_cell_store(kind);
            let metrics = flat_metrics(0, 200);
            let log: Vec<QueryRecord> = (0..600)
                .map(|i| rec(i % 3, (i as f64 * 311.7) % 200_000.0, 2.0 + (i % 7) as f64, i as u64))
                .collect();
            let events = interleave(&log, &metrics);
            let split = events.len() / 3;

            let mut live = IncrementalAggregator::new(&specs, cfg.clone());
            let mut pre = IncrementalAggregator::new(&specs, cfg.clone());
            for ev in &events[..split] {
                live.ingest(ev.clone());
                pre.ingest(ev.clone());
            }
            let mut w = WireWriter::new();
            pre.write_snapshot(&mut w);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            let mut restored = IncrementalAggregator::read_snapshot(&specs, &mut r).unwrap();
            r.finish("aggregator snapshot").unwrap();

            // Immediate re-serialization is byte-identical for the dense
            // store (hashed map iteration order may legally rotate).
            if kind == CellStoreKind::Dense {
                let mut w2 = WireWriter::new();
                restored.write_snapshot(&mut w2);
                assert_eq!(w2.into_bytes(), bytes, "re-serialization drifted");
            }

            for ev in &events[split..] {
                live.ingest(ev.clone());
                restored.ingest(ev.clone());
            }
            assert_eq!(live.stats(), restored.stats(), "{kind:?}");
            assert_eq!(live.watermark(), restored.watermark());
            assert_eq!(live.cell_seconds(), restored.cell_seconds());
            assert_eq!(live.record_count(), restored.record_count());
            let (ts, te) = (80, 200);
            assert_case_eq(&live.snapshot(ts, te), &restored.snapshot(ts, te));
            let mut wa = WireWriter::new();
            live.write_snapshot(&mut wa);
            let mut wb = WireWriter::new();
            restored.write_snapshot(&mut wb);
            if kind == CellStoreKind::Dense {
                assert_eq!(wa.into_bytes(), wb.into_bytes(), "post-drain state drifted");
            }
        }
    }

    #[test]
    fn checkpoint_rejects_wrong_scenario_and_corrupt_tags() {
        use pinsql_timeseries::{WireError, WireReader, WireWriter};
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let mut agg = IncrementalAggregator::new(&specs, IncrementalConfig::default());
        agg.ingest_query(rec(0, 1000.0, 2.0, 1));
        agg.advance_watermark(5);
        let mut w = WireWriter::new();
        agg.write_snapshot(&mut w);
        let bytes = w.into_bytes();

        // Restoring into a different workload is a typed mismatch.
        let other = vec![spec("SELECT 9 FROM u WHERE id = 9"), spec("SELECT 8 FROM v WHERE id = 8")];
        let err = IncrementalAggregator::read_snapshot(&other, &mut WireReader::new(&bytes))
            .expect_err("catalog mismatch must fail");
        assert!(matches!(err, WireError::Mismatch { what: "template catalog", .. }), "{err}");

        // A corrupt cellstore tag is a typed bad-tag error.
        let mut corrupt = bytes.clone();
        corrupt[16] = 9; // the kind byte follows two i64 config fields
        let err = IncrementalAggregator::read_snapshot(&specs, &mut WireReader::new(&corrupt))
            .expect_err("bad kind tag must fail");
        assert!(matches!(err, WireError::BadTag { what: "cellstore kind", .. }), "{err}");

        // Every truncation of the snapshot is an error, never a panic.
        for cut in 0..bytes.len() {
            let res =
                IncrementalAggregator::read_snapshot(&specs, &mut WireReader::new(&bytes[..cut]));
            assert!(res.is_err(), "cut at {cut} decoded");
        }
    }
}
