//! Streaming aggregation — the Kafka/Flink stand-in.
//!
//! Collectors on database instances publish query records asynchronously;
//! an aggregation job folds them into per-template per-second counters in
//! real time (§IV-A). This module reproduces that topology in-process: a
//! `crossbeam` channel carries records to a worker thread that maintains a
//! shared, lock-protected aggregate map, exactly the state the anomaly
//! detector polls.

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use pinsql_dbsim::QueryRecord;
use pinsql_sqlkit::SqlId;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-template running aggregates at 1-second granularity.
#[derive(Debug, Default, Clone)]
pub struct StreamAggregates {
    /// `(template, second) → (count, total_rt_ms, examined_rows)`.
    pub cells: HashMap<(SqlId, i64), (f64, f64, f64)>,
}

impl StreamAggregates {
    /// The `#execution` count for a template at a second.
    pub fn executions(&self, id: SqlId, second: i64) -> f64 {
        self.cells.get(&(id, second)).map_or(0.0, |c| c.0)
    }
}

/// A running streaming-aggregation job.
///
/// Producers send `(template, record)` pairs through [`StreamAggregator::sender`];
/// the worker folds them into the shared aggregates. Dropping the sender
/// (or calling [`StreamAggregator::finish`]) stops the worker.
pub struct StreamAggregator {
    sender: Option<Sender<(SqlId, QueryRecord)>>,
    worker: Option<JoinHandle<()>>,
    state: Arc<Mutex<StreamAggregates>>,
}

impl StreamAggregator {
    /// Spawns the aggregation worker with a bounded channel of `capacity`
    /// records (providing back-pressure like a real log pipeline).
    pub fn spawn(capacity: usize) -> Self {
        let (tx, rx) = bounded::<(SqlId, QueryRecord)>(capacity);
        let state = Arc::new(Mutex::new(StreamAggregates::default()));
        let worker_state = Arc::clone(&state);
        let worker = std::thread::spawn(move || {
            for (id, rec) in rx {
                let second = (rec.start_ms / 1000.0).floor() as i64;
                let mut agg = worker_state.lock();
                let cell = agg.cells.entry((id, second)).or_insert((0.0, 0.0, 0.0));
                cell.0 += 1.0;
                cell.1 += rec.response_ms;
                cell.2 += rec.examined_rows as f64;
            }
        });
        Self { sender: Some(tx), worker: Some(worker), state }
    }

    /// The producer endpoint.
    pub fn sender(&self) -> Sender<(SqlId, QueryRecord)> {
        self.sender.as_ref().expect("aggregator already finished").clone()
    }

    /// A snapshot of the current aggregates.
    pub fn snapshot(&self) -> StreamAggregates {
        self.state.lock().clone()
    }

    /// Closes the channel, waits for the worker to drain, and returns the
    /// final aggregates.
    pub fn finish(mut self) -> StreamAggregates {
        self.sender = None; // close the channel
        if let Some(w) = self.worker.take() {
            w.join().expect("aggregation worker panicked");
        }
        Arc::try_unwrap(std::mem::take(&mut self.state))
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone())
    }
}

impl Drop for StreamAggregator {
    fn drop(&mut self) {
        self.sender = None;
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_workload::SpecId;

    fn rec(start_ms: f64, rt: f64, rows: u64) -> QueryRecord {
        QueryRecord { spec: SpecId(0), start_ms, response_ms: rt, examined_rows: rows }
    }

    #[test]
    fn aggregates_across_threads() {
        let agg = StreamAggregator::spawn(1024);
        let id_a = SqlId(1);
        let id_b = SqlId(2);
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let tx = agg.sender();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let id = if i % 2 == 0 { id_a } else { id_b };
                        tx.send((id, rec(1000.0 * k as f64 + i as f64, 2.0, 3))).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let out = agg.finish();
        let total: f64 = out.cells.iter().filter(|((id, _), _)| *id == id_a).map(|(_, c)| c.0).sum();
        assert_eq!(total, 200.0);
        let total_b: f64 =
            out.cells.iter().filter(|((id, _), _)| *id == id_b).map(|(_, c)| c.0).sum();
        assert_eq!(total_b, 200.0);
    }

    #[test]
    fn attribution_by_arrival_second() {
        let agg = StreamAggregator::spawn(16);
        let tx = agg.sender();
        tx.send((SqlId(9), rec(1500.0, 4.0, 2))).unwrap();
        tx.send((SqlId(9), rec(1999.0, 6.0, 4))).unwrap();
        tx.send((SqlId(9), rec(2000.0, 1.0, 1))).unwrap();
        drop(tx);
        let out = agg.finish();
        assert_eq!(out.executions(SqlId(9), 1), 2.0);
        assert_eq!(out.executions(SqlId(9), 2), 1.0);
        assert_eq!(out.cells[&(SqlId(9), 1)].1, 10.0);
        assert_eq!(out.cells[&(SqlId(9), 1)].2, 6.0);
    }

    #[test]
    fn snapshot_while_running() {
        let agg = StreamAggregator::spawn(16);
        let tx = agg.sender();
        tx.send((SqlId(3), rec(0.0, 1.0, 0))).unwrap();
        // Give the worker a moment to drain.
        for _ in 0..200 {
            if agg.snapshot().executions(SqlId(3), 0) > 0.0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(agg.snapshot().executions(SqlId(3), 0), 1.0);
        drop(tx);
    }
}
