//! Channel-driven aggregation — the Kafka/Flink stand-in.
//!
//! Collectors on database instances publish telemetry asynchronously; an
//! aggregation job folds it into per-template per-second state in real time
//! (§IV-A). This module reproduces that topology in-process: a `crossbeam`
//! channel carries [`TelemetryEvent`]s to a worker thread that drives a
//! shared, lock-protected [`IncrementalAggregator`] — the *same* aggregation
//! implementation the synchronous engine path uses, so there is exactly one
//! aggregation algorithm with two drivers (in-line and channel).

use crate::aggregate::CaseData;
use crate::incremental::{IncrementalAggregator, IncrementalConfig, IngestStats};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use pinsql_dbsim::TelemetryEvent;
use pinsql_sqlkit::SqlId;
use pinsql_workload::TemplateSpec;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running channel-driven aggregation job.
///
/// Producers send [`TelemetryEvent`]s through [`StreamAggregator::sender`];
/// the worker folds them into a shared [`IncrementalAggregator`]. Dropping
/// every sender (or calling [`StreamAggregator::finish`]) stops the worker.
pub struct StreamAggregator {
    sender: Option<Sender<TelemetryEvent>>,
    worker: Option<JoinHandle<()>>,
    state: Arc<Mutex<IncrementalAggregator>>,
}

impl StreamAggregator {
    /// Spawns the aggregation worker with a bounded channel of `capacity`
    /// events (providing back-pressure like a real log pipeline).
    pub fn spawn(specs: &[TemplateSpec], cfg: IncrementalConfig, capacity: usize) -> Self {
        let (tx, rx) = bounded::<TelemetryEvent>(capacity);
        let state = Arc::new(Mutex::new(IncrementalAggregator::new(specs, cfg)));
        let worker_state = Arc::clone(&state);
        let worker = std::thread::spawn(move || {
            // Drain in batches under one lock acquisition: take whatever is
            // queued, then block for the next event only when empty. The
            // batch buffer is reused across iterations, and handing a whole
            // batch to `ingest_drain` lets the aggregator fold same-second
            // query runs through the chunked hot path.
            let mut batch: Vec<TelemetryEvent> = Vec::new();
            while let Ok(first) = rx.recv() {
                batch.push(first);
                while let Ok(ev) = rx.try_recv() {
                    batch.push(ev);
                }
                worker_state.lock().ingest_drain(&mut batch);
            }
        });
        Self { sender: Some(tx), worker: Some(worker), state }
    }

    /// The producer endpoint.
    pub fn sender(&self) -> Sender<TelemetryEvent> {
        self.sender.as_ref().expect("aggregator already finished").clone()
    }

    /// The `#execution` count for a template at a second, as currently
    /// aggregated (0 outside the retained horizon).
    pub fn executions(&self, id: SqlId, second: i64) -> f64 {
        self.state.lock().executions(id, second)
    }

    /// The worker's current watermark (`i64::MIN` before any event).
    pub fn watermark(&self) -> i64 {
        self.state.lock().watermark()
    }

    /// Current ingestion counters.
    pub fn stats(&self) -> IngestStats {
        self.state.lock().stats()
    }

    /// A [`CaseData`] snapshot of the collection window `[ts, te)` from the
    /// aggregates folded so far.
    pub fn snapshot_case(&self, ts: i64, te: i64) -> CaseData {
        self.state.lock().snapshot(ts, te)
    }

    /// Closes the channel, waits for the worker to drain, and returns the
    /// final aggregator state.
    pub fn finish(mut self) -> IncrementalAggregator {
        self.sender = None; // close the channel
        if let Some(w) = self.worker.take() {
            w.join().expect("aggregation worker panicked");
        }
        let state = Arc::clone(&self.state);
        drop(self); // run Drop with the worker already joined
        Arc::try_unwrap(state).map(|m| m.into_inner()).unwrap_or_else(|arc| arc.lock().clone())
    }
}

impl Drop for StreamAggregator {
    fn drop(&mut self) {
        self.sender = None;
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_workload::{CostProfile, SpecId, TableId};

    fn specs(n: usize) -> Vec<TemplateSpec> {
        (0..n)
            .map(|i| {
                TemplateSpec::new(
                    &format!("SELECT * FROM t{i} WHERE id = 1"),
                    CostProfile::point_read(TableId(0)),
                    "t",
                )
            })
            .collect()
    }

    fn rec(spec_idx: usize, start_ms: f64, rt: f64, rows: u64) -> TelemetryEvent {
        TelemetryEvent::Query(pinsql_dbsim::QueryRecord {
            spec: SpecId(spec_idx),
            start_ms,
            response_ms: rt,
            examined_rows: rows,
        })
    }

    #[test]
    fn aggregates_across_threads() {
        let specs = specs(2);
        let agg = StreamAggregator::spawn(&specs, IncrementalConfig::default(), 1024);
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let tx = agg.sender();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(rec(i % 2, 1000.0 * k as f64 + i as f64, 2.0, 3)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let out = agg.finish();
        let id_a = out.catalog().id_of_spec(SpecId(0));
        let id_b = out.catalog().id_of_spec(SpecId(1));
        let total_a: f64 = (0..5).map(|s| out.executions(id_a, s)).sum();
        let total_b: f64 = (0..5).map(|s| out.executions(id_b, s)).sum();
        assert_eq!(total_a, 200.0);
        assert_eq!(total_b, 200.0);
        assert_eq!(out.stats().queries, 400);
    }

    #[test]
    fn attribution_by_arrival_second() {
        let specs = specs(1);
        let agg = StreamAggregator::spawn(&specs, IncrementalConfig::default(), 16);
        let tx = agg.sender();
        tx.send(rec(0, 1500.0, 4.0, 2)).unwrap();
        tx.send(rec(0, 1999.0, 6.0, 4)).unwrap();
        tx.send(rec(0, 2000.0, 1.0, 1)).unwrap();
        drop(tx);
        let mut out = agg.finish();
        let id = out.catalog().id_of_spec(SpecId(0));
        assert_eq!(out.executions(id, 1), 2.0);
        assert_eq!(out.executions(id, 2), 1.0);
        let case = out.snapshot(1, 3);
        assert_eq!(case.templates.len(), 1);
        assert_eq!(case.templates[0].series.total_rt_ms, vec![10.0, 1.0]);
        assert_eq!(case.templates[0].series.examined_rows, vec![6.0, 1.0]);
    }

    #[test]
    fn snapshot_while_running() {
        let specs = specs(1);
        let id = crate::catalog::TemplateCatalog::from_specs(&specs).id_of_spec(SpecId(0));
        let agg = StreamAggregator::spawn(&specs, IncrementalConfig::default(), 16);
        let tx = agg.sender();
        tx.send(rec(0, 0.0, 1.0, 0)).unwrap();
        tx.send(TelemetryEvent::Tick { second: 1 }).unwrap();
        for _ in 0..200 {
            if agg.watermark() >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(agg.executions(id, 0), 1.0);
        assert_eq!(agg.snapshot_case(0, 1).records.len(), 1);
        drop(tx);
    }

    #[test]
    fn watermark_advances_on_ticks() {
        let specs = specs(1);
        let agg = StreamAggregator::spawn(&specs, IncrementalConfig::default(), 16);
        let tx = agg.sender();
        for s in 0..50 {
            tx.send(rec(0, s as f64 * 1000.0, 1.0, 0)).unwrap();
            tx.send(TelemetryEvent::Tick { second: s + 1 }).unwrap();
        }
        drop(tx);
        let out = agg.finish();
        assert_eq!(out.watermark(), 50);
        assert_eq!(out.record_count(), 50);
    }
}
