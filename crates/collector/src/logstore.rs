//! A bounded query-log store with time-based retention.
//!
//! The production system persists raw logs in Alibaba LogStore and
//! invalidates them after three days (§IV-A). This in-process stand-in
//! keeps records in arrival order and evicts everything older than the
//! retention horizon relative to the newest appended record.

use pinsql_dbsim::QueryRecord;
use std::collections::VecDeque;

/// Query-log store with a sliding retention window.
#[derive(Debug)]
pub struct LogStore {
    retention_ms: f64,
    records: VecDeque<QueryRecord>,
}

impl LogStore {
    /// Creates a store retaining `retention_s` seconds of records.
    ///
    /// # Panics
    /// Panics if `retention_s` is not positive.
    pub fn new(retention_s: f64) -> Self {
        assert!(retention_s > 0.0, "retention must be positive");
        Self { retention_ms: retention_s * 1000.0, records: VecDeque::new() }
    }

    /// The default three-day retention from the paper.
    pub fn with_default_retention() -> Self {
        Self::new(3.0 * 24.0 * 3600.0)
    }

    /// Appends a record (records must arrive in non-decreasing start
    /// order, as the collector receives them) and evicts expired ones.
    pub fn append(&mut self, rec: QueryRecord) {
        debug_assert!(
            self.records.back().is_none_or(|last| last.start_ms <= rec.start_ms + 1e-6),
            "log store expects non-decreasing arrivals"
        );
        self.records.push_back(rec);
        let horizon = rec.start_ms - self.retention_ms;
        while self.records.front().is_some_and(|r| r.start_ms < horizon) {
            self.records.pop_front();
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records whose arrival falls in `[from_ms, to_ms)`.
    pub fn query_window(&self, from_ms: f64, to_ms: f64) -> Vec<QueryRecord> {
        // Records are ordered by arrival: binary search the bounds.
        let slice = self.records.as_slices();
        let mut out = Vec::new();
        for part in [slice.0, slice.1] {
            let lo = part.partition_point(|r| r.start_ms < from_ms);
            let hi = part.partition_point(|r| r.start_ms < to_ms);
            out.extend_from_slice(&part[lo..hi]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_workload::SpecId;

    fn rec(start_ms: f64) -> QueryRecord {
        QueryRecord { spec: SpecId(0), start_ms, response_ms: 1.0, examined_rows: 0 }
    }

    #[test]
    fn retention_evicts_old_records() {
        let mut store = LogStore::new(10.0); // 10 s
        store.append(rec(0.0));
        store.append(rec(5_000.0));
        store.append(rec(9_999.0));
        assert_eq!(store.len(), 3);
        store.append(rec(12_000.0)); // horizon = 2 000 → evicts t=0
        assert_eq!(store.len(), 3);
        assert!(store.query_window(0.0, 1.0).is_empty());
    }

    #[test]
    fn query_window_is_half_open() {
        let mut store = LogStore::new(100.0);
        for t in [100.0, 200.0, 300.0] {
            store.append(rec(t));
        }
        let w = store.query_window(100.0, 300.0);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].start_ms, 100.0);
        assert_eq!(w[1].start_ms, 200.0);
    }

    #[test]
    fn empty_store() {
        let store = LogStore::with_default_retention();
        assert!(store.is_empty());
        assert!(store.query_window(0.0, 1e12).is_empty());
    }

    #[test]
    #[should_panic(expected = "retention must be positive")]
    fn zero_retention_panics() {
        let _ = LogStore::new(0.0);
    }
}
