//! Long-horizon per-template execution history (1-minute granularity).
//!
//! History Trend Verification (§VI) compares a candidate R-SQL's execution
//! trend during the anomaly with the same wall-clock window `N_d ∈ {1,3,7}`
//! days earlier. Aggregating into templates shrinks the data enough to keep
//! ~30 days (§IV-A); this store holds per-template 1-minute `#execution`
//! series keyed by absolute minute index.

use pinsql_sqlkit::SqlId;
use pinsql_timeseries::FxHashMap;
use serde::{Deserialize, Serialize};

/// One template's minute-granularity execution history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistorySeries {
    pub id: SqlId,
    /// Absolute minute index of the first sample.
    pub start_minute: i64,
    /// Executions per minute.
    pub executions: Vec<f64>,
}

impl HistorySeries {
    /// The sub-slice covering minutes `[from, to)`, zero-padded *logically*:
    /// minutes outside the stored range are treated as 0 by the caller via
    /// the returned `(offset, slice)`; this method returns only the stored
    /// overlap.
    pub fn window(&self, from_min: i64, to_min: i64) -> &[f64] {
        if self.executions.is_empty() || to_min <= from_min {
            return &[];
        }
        let lo = (from_min - self.start_minute).clamp(0, self.executions.len() as i64) as usize;
        let hi = (to_min - self.start_minute).clamp(0, self.executions.len() as i64) as usize;
        &self.executions[lo..hi]
    }
}

/// Store of per-template histories.
///
/// Series live in a dense `Vec`; the id map only resolves `SqlId` to a
/// stable entry index. Hot writers (the incremental aggregator's minute
/// fold) resolve each template once via [`entry_index`](Self::entry_index)
/// and then append through [`record_at`](Self::record_at) — a direct
/// vector index instead of a hash probe per (template, minute).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoryStore {
    series: Vec<HistorySeries>,
    index: FxHashMap<SqlId, u32>,
}

impl HistoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (replacing) a template's history.
    pub fn insert(&mut self, series: HistorySeries) {
        if let Some(&i) = self.index.get(&series.id) {
            self.series[i as usize] = series;
        } else {
            self.index.insert(series.id, self.series.len() as u32);
            self.series.push(series);
        }
    }

    /// The stable entry index for a template, creating an empty series on
    /// first sight. The index stays valid for the store's lifetime and can
    /// be cached by callers that record repeatedly.
    pub fn entry_index(&mut self, id: SqlId) -> u32 {
        if let Some(&i) = self.index.get(&id) {
            return i;
        }
        let i = self.series.len() as u32;
        self.index.insert(id, i);
        self.series.push(HistorySeries { id, start_minute: 0, executions: Vec::new() });
        i
    }

    /// Accumulates executions for a template at an absolute minute,
    /// extending the series as needed. Creating a series lazily starts it
    /// at the first touched minute.
    pub fn record(&mut self, id: SqlId, minute: i64, count: f64) {
        let i = self.entry_index(id);
        self.record_at(i, minute, count);
    }

    /// [`record`](Self::record) through a cached [`entry_index`](Self::entry_index).
    pub fn record_at(&mut self, entry: u32, minute: i64, count: f64) {
        let entry = &mut self.series[entry as usize];
        if entry.executions.is_empty() {
            entry.start_minute = minute;
        } else if minute < entry.start_minute {
            // Prepend zeros (rare: out-of-order backfill).
            let shift = (entry.start_minute - minute) as usize;
            let mut v = vec![0.0; shift];
            v.extend_from_slice(&entry.executions);
            entry.executions = v;
            entry.start_minute = minute;
        }
        let idx = (minute - entry.start_minute) as usize;
        if entry.executions.len() <= idx {
            entry.executions.resize(idx + 1, 0.0);
        }
        entry.executions[idx] += count;
    }

    /// A template's history, if known.
    pub fn get(&self, id: SqlId) -> Option<&HistorySeries> {
        self.index.get(&id).map(|&i| &self.series[i as usize])
    }

    /// The execution series over minutes `[from, to)`, zero-filled where no
    /// data exists (including templates never seen at all — a template that
    /// did not exist `N_d` days ago has an all-zero history there, which is
    /// precisely what makes a *new* template verifiable as an R-SQL).
    pub fn window_filled(&self, id: SqlId, from_min: i64, to_min: i64) -> Vec<f64> {
        let n = (to_min - from_min).max(0) as usize;
        let mut out = vec![0.0; n];
        if let Some(series) = self.get(id) {
            let overlap = series.window(from_min, to_min);
            if !overlap.is_empty() {
                let offset = (series.start_minute.max(from_min) - from_min) as usize;
                out[offset..offset + overlap.len()].copy_from_slice(overlap);
            }
        }
        out
    }

    /// All series in entry-index (creation) order — the checkpoint
    /// serialization order: re-[`insert`](Self::insert)ing them into an
    /// empty store in this order reproduces both the dense vector and
    /// every cached [`entry_index`](Self::entry_index) value.
    pub fn iter(&self) -> impl Iterator<Item = &HistorySeries> {
        self.series.iter()
    }

    /// Number of templates with history.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no template has history.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ID: SqlId = SqlId(42);

    #[test]
    fn record_and_window() {
        let mut store = HistoryStore::new();
        store.record(ID, 100, 5.0);
        store.record(ID, 101, 7.0);
        store.record(ID, 101, 1.0);
        store.record(ID, 104, 2.0);
        let w = store.window_filled(ID, 100, 105);
        assert_eq!(w, vec![5.0, 8.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn window_filled_pads_outside_range() {
        let mut store = HistoryStore::new();
        store.record(ID, 10, 3.0);
        let w = store.window_filled(ID, 8, 13);
        assert_eq!(w, vec![0.0, 0.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn unknown_template_is_all_zero() {
        let store = HistoryStore::new();
        let w = store.window_filled(SqlId(7), 0, 4);
        assert_eq!(w, vec![0.0; 4]);
        assert!(store.is_empty());
    }

    #[test]
    fn backfill_before_start_prepends() {
        let mut store = HistoryStore::new();
        store.record(ID, 10, 1.0);
        store.record(ID, 8, 2.0);
        let w = store.window_filled(ID, 8, 11);
        assert_eq!(w, vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn insert_replaces() {
        let mut store = HistoryStore::new();
        store.insert(HistorySeries { id: ID, start_minute: 0, executions: vec![1.0] });
        store.insert(HistorySeries { id: ID, start_minute: 0, executions: vec![9.0, 9.0] });
        assert_eq!(store.window_filled(ID, 0, 2), vec![9.0, 9.0]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn record_at_matches_record() {
        let mut by_id = HistoryStore::new();
        let mut by_index = HistoryStore::new();
        let idx = by_index.entry_index(ID);
        for (m, c) in [(10, 1.0), (8, 2.0), (12, 3.0), (10, 0.5)] {
            by_id.record(ID, m, c);
            by_index.record_at(idx, m, c);
        }
        assert_eq!(by_id.window_filled(ID, 8, 13), by_index.window_filled(ID, 8, 13));
        assert_eq!(by_index.entry_index(ID), idx, "entry index is stable");
        assert_eq!(by_id.len(), by_index.len());
        assert_eq!(by_id.get(ID).unwrap().start_minute, by_index.get(ID).unwrap().start_minute);
    }

    #[test]
    fn degenerate_window() {
        let mut store = HistoryStore::new();
        store.record(ID, 5, 1.0);
        assert!(store.window_filled(ID, 10, 10).is_empty());
        assert!(store.get(ID).unwrap().window(7, 3).is_empty());
    }
}
