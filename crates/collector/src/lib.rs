//! Data collection and pre-processing (§IV-A of the paper).
//!
//! Production PinSQL ships query logs through LogStore/Kafka/Flink and
//! aggregates them into per-template time series at 1-second and 1-minute
//! granularities. This crate is the in-process substitute:
//!
//! * [`catalog`] — the template catalog: `SqlId → (text, kind, tables,
//!   contributing specs)`, built from workload specs (structurally equal
//!   SQL from different services folds into one template, as in MySQL
//!   digests);
//! * [`logstore`] — a bounded log store with time-based retention (the
//!   paper keeps three days of raw logs);
//! * [`aggregate`] — batch aggregation of a collection window into
//!   [`CaseData`]: per-template `#execution`, total response time, and
//!   examined-rows series plus the raw records PinSQL's active-session
//!   estimator needs;
//! * [`cellstore`] — the per-second, per-template cell ring behind the
//!   incremental aggregator, with a direct-indexed dense-slab hot path and
//!   a hashed reference representation ([`CellStoreKind`]);
//! * [`history`] — the long-horizon per-template 1-minute `#execution`
//!   store used by history-trend verification (1/3/7 days back);
//! * [`incremental`] — the online aggregation engine: folds a
//!   [`TelemetryEvent`](pinsql_dbsim::TelemetryEvent) stream into
//!   ring-buffered per-second cells with bounded retention, feeds the
//!   history store in-line, and re-assembles a batch-bit-identical
//!   [`CaseData`] snapshot for any retained window;
//! * [`stream`] — a crossbeam-channel driver (the Kafka/Flink stand-in)
//!   that runs the same incremental aggregator behind a bounded channel.

pub mod aggregate;
pub mod catalog;
pub mod cellstore;
pub mod history;
pub mod incremental;
pub mod logstore;
pub mod stream;

pub use aggregate::{aggregate_case, CaseData, TemplateData, TemplateSeries, WindowCut};
pub use catalog::{TemplateCatalog, TemplateInfo};
pub use cellstore::{CellStore, CellStoreKind};
pub use history::{HistorySeries, HistoryStore};
pub use incremental::{IncrementalAggregator, IncrementalConfig, IngestStats};
pub use logstore::LogStore;
pub use stream::StreamAggregator;
