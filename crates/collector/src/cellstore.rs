//! Per-second, per-template cell storage for the incremental aggregator.
//!
//! A *cell* is one `(execution count, total response time, examined rows)`
//! triple for one template in one second. The aggregator holds a
//! contiguous ring of per-second rows; this module provides the two row
//! representations behind one interface:
//!
//! * [`CellStoreKind::Dense`] — packed rows plus one shared write index:
//!   each row is just its touched `(slot, cell)` pairs in first-touch
//!   order, and a single `slot → index` position table ([`PosTable`])
//!   serves whichever row is currently being written (the ring's write
//!   frontier on an in-order stream). Attributing a record is one
//!   bounds-checked probe of that table — which stays cache-hot because
//!   it is the *only* position table, not one of `retention_s` of them —
//!   and one packed-vector write; no hashing, no per-record allocation.
//!   Writing to a different row re-targets the table by re-indexing that
//!   row's touched pairs (`O(touched)`, and free for the empty row a new
//!   second opens). Evicted rows are recycled through a free list and
//!   invalidating the table is an epoch bump, so the steady-state ingest
//!   loop neither allocates nor re-touches cold memory per second.
//! * [`CellStoreKind::Hashed`] — the original map representation, one
//!   [`FxHashMap`]`<slot, Cell>` per second. Kept as the reference
//!   implementation (the equivalence property tests drive both kinds with
//!   identical streams) and as the fallback for enormous catalogs where
//!   even one position table would waste memory.
//!
//! Both kinds are keyed by the same dense slot, accumulate in the same
//! per-record order, and expose touched cells identically up to visit
//! order (dense rows visit in first-touch order, hashed rows in map
//! order — every consumer either writes to disjoint per-slot state or
//! sorts afterwards), so every consumer — snapshot assembly, history
//! folding, the `executions` counter — produces bit-identical results
//! over either representation.

use pinsql_timeseries::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One second's per-template aggregates:
/// `(count, total_rt_ms, examined_rows)`.
pub type Cell = (f64, f64, f64);

/// One second's touched cells, packed in first-touch order.
type DenseData = Vec<(u32, Cell)>;

/// Bits of a [`PosTable`] entry holding the cell index; the remaining
/// high bits hold the entry's epoch tag.
const IDX_BITS: u32 = 20;
const IDX_MASK: u32 = (1 << IDX_BITS) - 1;
/// Epochs live in the high `32 - IDX_BITS` bits; `0` is reserved so a
/// zero-initialized table reads as all-stale.
const EPOCH_LIMIT: u32 = 1 << (32 - IDX_BITS);

/// Shared-table owner sentinel: no row currently indexed.
const NO_OWNER: usize = usize::MAX;

/// Which row representation an aggregator uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStoreKind {
    /// Packed rows + one shared write index (hot-path default).
    #[default]
    Dense,
    /// `FxHashMap<slot, Cell>` per second (reference / sparse fallback).
    Hashed,
}

/// The shared `slot → cell index` write table: `pos[slot]` packs an epoch
/// tag (high bits) with the index of the slot's cell inside the owning
/// row's data (low [`IDX_BITS`]). An entry is live only while its tag
/// matches the current epoch, so re-targeting the table to another row
/// starts from an epoch bump — stale entries are never rewritten.
#[derive(Debug, Clone)]
pub struct PosTable {
    pos: Box<[u32]>,
    epoch: u32,
}

impl PosTable {
    /// A table over `n_slots` dense template slots.
    ///
    /// Panics if `n_slots` exceeds the entry index range (2^20 slots);
    /// catalogs that large belong on [`CellStoreKind::Hashed`].
    fn new(n_slots: usize) -> Self {
        assert!(n_slots <= IDX_MASK as usize + 1, "catalog too large for dense rows");
        Self { pos: vec![0; n_slots].into(), epoch: 1 }
    }

    /// Invalidates every entry in `O(1)`: bumps the epoch. Only when the
    /// counter wraps (every `EPOCH_LIMIT - 1` resets) is the table
    /// actually rewritten.
    fn reset(&mut self) {
        self.epoch += 1;
        if self.epoch == EPOCH_LIMIT {
            self.epoch = 1;
            self.pos.fill(0);
        }
    }

    /// Re-targets the table to index `data` (`O(touched)`).
    fn rebuild(&mut self, data: &DenseData) {
        self.reset();
        for (i, &(slot, _)) in data.iter().enumerate() {
            self.pos[slot as usize] = (self.epoch << IDX_BITS) | i as u32;
        }
    }

    /// The owning row's cell index for `slot`, if touched.
    #[inline]
    fn lookup(&self, slot: u32) -> Option<usize> {
        let p = self.pos[slot as usize];
        (p >> IDX_BITS == self.epoch).then(|| (p & IDX_MASK) as usize)
    }
}

/// Write access to one dense row through the shared position table.
pub struct DenseRowMut<'a> {
    pos: &'a mut PosTable,
    data: &'a mut DenseData,
}

impl DenseRowMut<'_> {
    /// Folds one record into `slot`, returning the cell's execution count
    /// *before* this record (`0.0` for a freshly touched cell) — the
    /// running-moment tracker turns that into an O(1) evict + push delta.
    ///
    /// New cells start at `(0.0, 0.0, 0.0)` and are accumulated with `+=`
    /// rather than assigned from the first record: `0.0 + (-0.0)` is
    /// `+0.0`, so a leading negative-zero measurement folds to the same
    /// bits as it always has (a direct assignment would store `-0.0`,
    /// which serializes differently).
    #[inline]
    pub fn add(&mut self, slot: u32, rt_ms: f64, rows: f64) -> f64 {
        let p = &mut self.pos.pos[slot as usize];
        let cell = if *p >> IDX_BITS == self.pos.epoch {
            &mut self.data[(*p & IDX_MASK) as usize].1
        } else {
            *p = (self.pos.epoch << IDX_BITS) | self.data.len() as u32;
            self.data.push((slot, (0.0, 0.0, 0.0)));
            &mut self.data.last_mut().expect("just pushed").1
        };
        let prev = cell.0;
        cell.0 += 1.0;
        cell.1 += rt_ms;
        cell.2 += rows;
        prev
    }
}

#[derive(Debug, Clone)]
enum Rows {
    Dense {
        rows: VecDeque<DenseData>,
        /// Evicted rows awaiting reuse — the steady-state ring cycles
        /// through `len + free` rows without touching the allocator.
        free: Vec<DenseData>,
        /// The one shared write table (see module docs).
        pos: PosTable,
        /// Ring index of the row `pos` currently indexes, [`NO_OWNER`]
        /// when none; maintained across front pushes/pops, which shift
        /// ring indices.
        owner: usize,
    },
    Hashed(VecDeque<FxHashMap<u32, Cell>>),
}

/// A ring of per-second cell rows. Ring position ↔ absolute second
/// bookkeeping stays with the caller (the aggregator); the store only
/// deals in row indices `0..len()`.
#[derive(Debug, Clone)]
pub struct CellStore {
    n_slots: usize,
    rows: Rows,
}

impl CellStore {
    /// An empty store over `n_slots` dense template slots.
    pub fn new(kind: CellStoreKind, n_slots: usize) -> Self {
        let rows = match kind {
            CellStoreKind::Dense => Rows::Dense {
                rows: VecDeque::new(),
                free: Vec::new(),
                pos: PosTable::new(n_slots),
                owner: NO_OWNER,
            },
            CellStoreKind::Hashed => Rows::Hashed(VecDeque::new()),
        };
        Self { n_slots, rows }
    }

    /// The row representation this store was built with.
    pub fn kind(&self) -> CellStoreKind {
        match &self.rows {
            Rows::Dense { .. } => CellStoreKind::Dense,
            Rows::Hashed(_) => CellStoreKind::Hashed,
        }
    }

    /// The dense template-slot count this store was sized for.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Appends a row at the back with *exact* cell values, in iteration
    /// order — the checkpoint-restore path. Unlike [`add`](Self::add),
    /// which accumulates, the cells are installed verbatim, so a restored
    /// row is bit-identical to the one that was serialized (dense rows
    /// additionally keep first-touch order, which `cells` arrives in).
    ///
    /// Callers must have validated `slot < n_slots` for every pair; the
    /// shared write table is sized for the catalog and an out-of-range
    /// slot would corrupt it on the next write.
    pub fn push_back_row(&mut self, cells: impl IntoIterator<Item = (u32, Cell)>) {
        match &mut self.rows {
            Rows::Dense { rows, free, .. } => {
                let mut data = free.pop().unwrap_or_default();
                data.clear();
                data.extend(cells);
                debug_assert!(data.iter().all(|&(s, _)| (s as usize) < self.n_slots));
                rows.push_back(data);
            }
            Rows::Hashed(rows) => {
                let mut map = FxHashMap::default();
                for (slot, cell) in cells {
                    debug_assert!((slot as usize) < self.n_slots);
                    map.insert(slot, cell);
                }
                rows.push_back(map);
            }
        }
    }

    /// Number of second-rows currently held.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::Dense { rows, .. } => rows.len(),
            Rows::Hashed(rows) => rows.len(),
        }
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an empty row at the back (one second later).
    pub fn push_back(&mut self) {
        match &mut self.rows {
            Rows::Dense { rows, free, .. } => rows.push_back(free.pop().unwrap_or_default()),
            Rows::Hashed(rows) => rows.push_back(FxHashMap::default()),
        }
    }

    /// Prepends an empty row at the front (one second earlier).
    pub fn push_front(&mut self) {
        match &mut self.rows {
            Rows::Dense { rows, free, owner, .. } => {
                rows.push_front(free.pop().unwrap_or_default());
                if *owner != NO_OWNER {
                    *owner += 1;
                }
            }
            Rows::Hashed(rows) => rows.push_front(FxHashMap::default()),
        }
    }

    /// Drops the oldest row. Dense rows are recycled; clearing one is
    /// `O(1)` (truncate the packed pairs — the shared table only ever
    /// indexes the row being written).
    pub fn pop_front(&mut self) {
        match &mut self.rows {
            Rows::Dense { rows, free, owner, .. } => {
                if let Some(mut data) = rows.pop_front() {
                    data.clear();
                    free.push(data);
                    *owner = match *owner {
                        0 | NO_OWNER => NO_OWNER,
                        o => o - 1,
                    };
                }
            }
            Rows::Hashed(rows) => {
                rows.pop_front();
            }
        }
    }

    /// Mutable access to row `idx`, for amortizing the row lookup across a
    /// run of same-second records. Callers folding a run match the
    /// returned enum once and loop inside the arm, so the per-record fold
    /// is monomorphic. For dense rows this re-targets the shared write
    /// table when `idx` is not the row it already indexes — free for a
    /// freshly opened (empty) second, `O(touched)` for an out-of-order
    /// write into an older row.
    #[inline]
    pub fn row_mut(&mut self, idx: usize) -> RowMut<'_> {
        match &mut self.rows {
            Rows::Dense { rows, pos, owner, .. } => {
                if *owner != idx {
                    pos.rebuild(&rows[idx]);
                    *owner = idx;
                }
                RowMut::Dense(DenseRowMut { pos, data: &mut rows[idx] })
            }
            Rows::Hashed(rows) => RowMut::Hashed(&mut rows[idx]),
        }
    }

    /// Folds one record into `(idx, slot)`, returning the cell's
    /// execution count before this record.
    #[inline]
    pub fn add(&mut self, idx: usize, slot: u32, rt_ms: f64, rows: f64) -> f64 {
        self.row_mut(idx).add(slot, rt_ms, rows)
    }

    /// The cell at `(idx, slot)`, `None` when no record ever touched it.
    /// Dense rows answer through the shared table when `idx` owns it and
    /// by scanning the row's touched pairs otherwise (reads never steal
    /// the table from the write path).
    pub fn get(&self, idx: usize, slot: u32) -> Option<Cell> {
        match &self.rows {
            Rows::Dense { rows, pos, owner, .. } => {
                if *owner == idx {
                    pos.lookup(slot).map(|i| rows[idx][i].1)
                } else {
                    rows[idx].iter().find(|&&(s, _)| s == slot).map(|&(_, c)| c)
                }
            }
            Rows::Hashed(rows) => rows[idx].get(&slot).copied(),
        }
    }

    /// Visits every *touched* cell of row `idx`. Dense rows visit in
    /// first-touch order; hashed rows in unspecified map order — callers
    /// that need an order sort by template id afterwards (every current
    /// consumer either sorts, accumulates into disjoint per-slot state, or
    /// is order-insensitive).
    pub fn for_each(&self, idx: usize, mut f: impl FnMut(u32, Cell)) {
        match &self.rows {
            Rows::Dense { rows, .. } => {
                for &(slot, cell) in &rows[idx] {
                    f(slot, cell);
                }
            }
            Rows::Hashed(rows) => {
                for (slot, cell) in &rows[idx] {
                    f(*slot, *cell);
                }
            }
        }
    }
}

/// One mutable second-row, either representation.
pub enum RowMut<'a> {
    Dense(DenseRowMut<'a>),
    Hashed(&'a mut FxHashMap<u32, Cell>),
}

impl RowMut<'_> {
    /// Folds one record into the row: `count += 1`, `rt += rt_ms`,
    /// `rows += rows_examined`. Returns the row's execution count for
    /// `slot` before this record (`0.0` for a freshly touched cell).
    #[inline]
    pub fn add(&mut self, slot: u32, rt_ms: f64, rows: f64) -> f64 {
        match self {
            RowMut::Dense(row) => row.add(slot, rt_ms, rows),
            RowMut::Hashed(map) => {
                let cell = map.entry(slot).or_insert((0.0, 0.0, 0.0));
                let prev = cell.0;
                cell.0 += 1.0;
                cell.1 += rt_ms;
                cell.2 += rows;
                prev
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [CellStore; 2] {
        [CellStore::new(CellStoreKind::Dense, 4), CellStore::new(CellStoreKind::Hashed, 4)]
    }

    #[test]
    fn kinds_agree_on_adds_and_reads() {
        for mut store in both() {
            store.push_back();
            store.push_back();
            store.add(0, 2, 10.0, 3.0);
            store.add(0, 2, 4.0, 1.0);
            store.add(1, 0, 7.0, 0.0);
            assert_eq!(store.get(0, 2), Some((2.0, 14.0, 4.0)));
            assert_eq!(store.get(0, 0), None, "untouched cell reads as absent");
            assert_eq!(store.get(1, 0), Some((1.0, 7.0, 0.0)));

            let mut touched: Vec<(u32, Cell)> = Vec::new();
            store.for_each(0, |slot, cell| touched.push((slot, cell)));
            assert_eq!(touched, vec![(2, (2.0, 14.0, 4.0))]);
        }
    }

    #[test]
    fn run_accumulation_through_row_mut() {
        for mut store in both() {
            store.push_back();
            let mut row = store.row_mut(0);
            for i in 0..5u32 {
                row.add(i % 2, 1.0, 2.0);
            }
            assert_eq!(store.get(0, 0), Some((3.0, 3.0, 6.0)));
            assert_eq!(store.get(0, 1), Some((2.0, 2.0, 4.0)));
        }
    }

    #[test]
    fn add_returns_the_previous_execution_count() {
        for mut store in both() {
            store.push_back();
            assert_eq!(store.add(0, 2, 1.0, 0.0), 0.0, "fresh cell");
            assert_eq!(store.add(0, 2, 1.0, 0.0), 1.0);
            assert_eq!(store.add(0, 2, 1.0, 0.0), 2.0);
            assert_eq!(store.add(0, 1, 1.0, 0.0), 0.0, "other slot is independent");
        }
    }

    #[test]
    fn ring_operations() {
        for mut store in both() {
            assert!(store.is_empty());
            store.push_back();
            store.add(0, 1, 5.0, 0.0);
            store.push_front(); // new empty second before the first
            assert_eq!(store.len(), 2);
            assert_eq!(store.get(0, 1), None);
            assert_eq!(store.get(1, 1), Some((1.0, 5.0, 0.0)));
            store.pop_front();
            assert_eq!(store.len(), 1);
            assert_eq!(store.get(0, 1), Some((1.0, 5.0, 0.0)));
        }
    }

    #[test]
    fn recycled_rows_read_as_empty() {
        let mut store = CellStore::new(CellStoreKind::Dense, 4);
        store.push_back();
        for slot in 0..4 {
            store.add(0, slot, 1.0, 1.0);
        }
        store.pop_front();
        // The next push must hand back the recycled row, fully cleared.
        store.push_back();
        for slot in 0..4 {
            assert_eq!(store.get(0, slot), None, "slot {slot}");
        }
        let mut touched = 0;
        store.for_each(0, |_, _| touched += 1);
        assert_eq!(touched, 0);
        // And it accumulates from scratch, not from stale cells.
        store.add(0, 2, 3.0, 1.0);
        assert_eq!(store.get(0, 2), Some((1.0, 3.0, 1.0)));
    }

    #[test]
    fn dense_first_touch_order_is_preserved() {
        let mut store = CellStore::new(CellStoreKind::Dense, 8);
        store.push_back();
        for slot in [5u32, 1, 7, 1, 5, 0] {
            store.add(0, slot, 1.0, 0.0);
        }
        let mut order: Vec<u32> = Vec::new();
        store.for_each(0, |slot, _| order.push(slot));
        assert_eq!(order, vec![5, 1, 7, 0]);
    }

    #[test]
    fn interleaved_writes_re_target_the_shared_table() {
        // Alternating writes between two rows force the write table to
        // re-index on every switch; accumulation must stay per-row exact,
        // including re-touching a slot first touched before a switch.
        let mut store = CellStore::new(CellStoreKind::Dense, 8);
        store.push_back();
        store.push_back();
        for (idx, slot) in [(0, 3u32), (1, 3), (0, 3), (1, 5), (0, 5), (1, 3)] {
            store.add(idx, slot, 1.0, 1.0);
        }
        assert_eq!(store.get(0, 3), Some((2.0, 2.0, 2.0)));
        assert_eq!(store.get(0, 5), Some((1.0, 1.0, 1.0)));
        assert_eq!(store.get(1, 3), Some((2.0, 2.0, 2.0)));
        assert_eq!(store.get(1, 5), Some((1.0, 1.0, 1.0)));
        // get() on the non-owner row (0 — row 1 wrote last) answers by
        // scanning its pairs; both paths must agree.
        let mut order: Vec<u32> = Vec::new();
        store.for_each(0, |slot, _| order.push(slot));
        assert_eq!(order, vec![3, 5]);
    }

    #[test]
    fn front_pushes_and_pops_keep_the_owner_aligned() {
        let mut store = CellStore::new(CellStoreKind::Dense, 4);
        store.push_back();
        store.add(0, 1, 5.0, 0.0); // row 0 owns the table
        store.push_front(); // owned row shifts to index 1
        store.add(1, 1, 7.0, 0.0); // must hit the same row, no rebuild
        assert_eq!(store.get(1, 1), Some((2.0, 12.0, 0.0)));
        store.pop_front(); // owned row shifts back to index 0
        store.add(0, 2, 1.0, 0.0);
        assert_eq!(store.get(0, 1), Some((2.0, 12.0, 0.0)));
        assert_eq!(store.get(0, 2), Some((1.0, 1.0, 0.0)));
        store.pop_front(); // pops the owned row itself
        assert!(store.is_empty());
        store.push_back();
        store.add(0, 1, 3.0, 0.0);
        assert_eq!(store.get(0, 1), Some((1.0, 3.0, 0.0)));
    }

    #[test]
    fn negative_zero_measurements_fold_to_positive_zero() {
        // Bit-compatibility with the zero-initialized slab representation:
        // `0.0 + (-0.0)` is `+0.0`, so a leading `-0.0` must not leak its
        // sign bit into the stored cell.
        for mut store in both() {
            store.push_back();
            store.add(0, 1, -0.0, -0.0);
            let (_, rt, rows) = store.get(0, 1).expect("touched");
            assert_eq!(rt.to_bits(), 0.0f64.to_bits());
            assert_eq!(rows.to_bits(), 0.0f64.to_bits());
        }
    }
}
