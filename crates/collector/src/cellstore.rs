//! Per-second, per-template cell storage for the incremental aggregator.
//!
//! A *cell* is one `(execution count, total response time, examined rows)`
//! triple for one template in one second. The aggregator holds a
//! contiguous ring of per-second rows; this module provides the two row
//! representations behind one interface:
//!
//! * [`CellStoreKind::Dense`] — a direct-indexed slab: each row is a boxed
//!   `[Cell; n_slots]`, indexed by the catalog's dense template slot.
//!   Attributing a record is a bounds-checked array write — no hashing, no
//!   per-record allocation (one zeroed slab per *second*, amortized over
//!   every record of that second). This is the hot-path default: the
//!   catalog is fixed at construction, so the slot space is known and
//!   small (one workload's distinct templates).
//! * [`CellStoreKind::Hashed`] — the original map representation, one
//!   [`FxHashMap`]`<slot, Cell>` per second. Kept as the reference
//!   implementation (the equivalence property tests drive both kinds with
//!   identical streams) and as the fallback for enormous, sparsely-touched
//!   catalogs where `seconds × n_slots` slabs would waste memory.
//!
//! Both kinds are keyed by the same dense slot, accumulate in the same
//! per-record order, and expose touched cells identically, so every
//! consumer — snapshot assembly, history folding, the `executions` counter
//! — produces bit-identical results over either representation.

use pinsql_timeseries::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One second's per-template aggregates:
/// `(count, total_rt_ms, examined_rows)`.
pub type Cell = (f64, f64, f64);

/// Which row representation an aggregator uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStoreKind {
    /// Direct-indexed `[Cell; n_slots]` slab per second (hot-path default).
    #[default]
    Dense,
    /// `FxHashMap<slot, Cell>` per second (reference / sparse fallback).
    Hashed,
}

#[derive(Debug, Clone)]
enum Rows {
    Dense(VecDeque<Box<[Cell]>>),
    Hashed(VecDeque<FxHashMap<u32, Cell>>),
}

/// A ring of per-second cell rows. Ring position ↔ absolute second
/// bookkeeping stays with the caller (the aggregator); the store only
/// deals in row indices `0..len()`.
#[derive(Debug, Clone)]
pub struct CellStore {
    n_slots: usize,
    rows: Rows,
}

impl CellStore {
    /// An empty store over `n_slots` dense template slots.
    pub fn new(kind: CellStoreKind, n_slots: usize) -> Self {
        let rows = match kind {
            CellStoreKind::Dense => Rows::Dense(VecDeque::new()),
            CellStoreKind::Hashed => Rows::Hashed(VecDeque::new()),
        };
        Self { n_slots, rows }
    }

    /// Number of second-rows currently held.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::Dense(rows) => rows.len(),
            Rows::Hashed(rows) => rows.len(),
        }
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an empty row at the back (one second later).
    pub fn push_back(&mut self) {
        match &mut self.rows {
            Rows::Dense(rows) => rows.push_back(vec![(0.0, 0.0, 0.0); self.n_slots].into()),
            Rows::Hashed(rows) => rows.push_back(FxHashMap::default()),
        }
    }

    /// Prepends an empty row at the front (one second earlier).
    pub fn push_front(&mut self) {
        match &mut self.rows {
            Rows::Dense(rows) => rows.push_front(vec![(0.0, 0.0, 0.0); self.n_slots].into()),
            Rows::Hashed(rows) => rows.push_front(FxHashMap::default()),
        }
    }

    /// Drops the oldest row.
    pub fn pop_front(&mut self) {
        match &mut self.rows {
            Rows::Dense(rows) => {
                rows.pop_front();
            }
            Rows::Hashed(rows) => {
                rows.pop_front();
            }
        }
    }

    /// Mutable access to row `idx`, for amortizing the row lookup across a
    /// run of same-second records.
    #[inline]
    pub fn row_mut(&mut self, idx: usize) -> RowMut<'_> {
        match &mut self.rows {
            Rows::Dense(rows) => RowMut::Dense(&mut rows[idx]),
            Rows::Hashed(rows) => RowMut::Hashed(&mut rows[idx]),
        }
    }

    /// Folds one record into `(idx, slot)`.
    #[inline]
    pub fn add(&mut self, idx: usize, slot: u32, rt_ms: f64, rows: f64) {
        self.row_mut(idx).add(slot, rt_ms, rows);
    }

    /// The cell at `(idx, slot)`, `None` when no record ever touched it.
    pub fn get(&self, idx: usize, slot: u32) -> Option<Cell> {
        match &self.rows {
            Rows::Dense(rows) => {
                let cell = rows[idx][slot as usize];
                (cell.0 != 0.0).then_some(cell)
            }
            Rows::Hashed(rows) => rows[idx].get(&slot).copied(),
        }
    }

    /// Visits every *touched* cell of row `idx`. Dense rows visit in
    /// ascending slot order; hashed rows in unspecified order — callers
    /// that need an order sort by template id afterwards (every current
    /// consumer either sorts or writes to disjoint indices).
    pub fn for_each(&self, idx: usize, mut f: impl FnMut(u32, Cell)) {
        match &self.rows {
            Rows::Dense(rows) => {
                for (slot, cell) in rows[idx].iter().enumerate() {
                    if cell.0 != 0.0 {
                        f(slot as u32, *cell);
                    }
                }
            }
            Rows::Hashed(rows) => {
                for (slot, cell) in &rows[idx] {
                    f(*slot, *cell);
                }
            }
        }
    }
}

/// One mutable second-row, either representation.
pub enum RowMut<'a> {
    Dense(&'a mut [Cell]),
    Hashed(&'a mut FxHashMap<u32, Cell>),
}

impl RowMut<'_> {
    /// Folds one record into the row: `count += 1`, `rt += rt_ms`,
    /// `rows += rows_examined`.
    #[inline]
    pub fn add(&mut self, slot: u32, rt_ms: f64, rows: f64) {
        let cell = match self {
            RowMut::Dense(cells) => &mut cells[slot as usize],
            RowMut::Hashed(map) => map.entry(slot).or_insert((0.0, 0.0, 0.0)),
        };
        cell.0 += 1.0;
        cell.1 += rt_ms;
        cell.2 += rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [CellStore; 2] {
        [CellStore::new(CellStoreKind::Dense, 4), CellStore::new(CellStoreKind::Hashed, 4)]
    }

    #[test]
    fn kinds_agree_on_adds_and_reads() {
        for mut store in both() {
            store.push_back();
            store.push_back();
            store.add(0, 2, 10.0, 3.0);
            store.add(0, 2, 4.0, 1.0);
            store.add(1, 0, 7.0, 0.0);
            assert_eq!(store.get(0, 2), Some((2.0, 14.0, 4.0)));
            assert_eq!(store.get(0, 0), None, "untouched cell reads as absent");
            assert_eq!(store.get(1, 0), Some((1.0, 7.0, 0.0)));

            let mut touched: Vec<(u32, Cell)> = Vec::new();
            store.for_each(0, |slot, cell| touched.push((slot, cell)));
            assert_eq!(touched, vec![(2, (2.0, 14.0, 4.0))]);
        }
    }

    #[test]
    fn run_accumulation_through_row_mut() {
        for mut store in both() {
            store.push_back();
            let mut row = store.row_mut(0);
            for i in 0..5u32 {
                row.add(i % 2, 1.0, 2.0);
            }
            assert_eq!(store.get(0, 0), Some((3.0, 3.0, 6.0)));
            assert_eq!(store.get(0, 1), Some((2.0, 2.0, 4.0)));
        }
    }

    #[test]
    fn ring_operations() {
        for mut store in both() {
            assert!(store.is_empty());
            store.push_back();
            store.add(0, 1, 5.0, 0.0);
            store.push_front(); // new empty second before the first
            assert_eq!(store.len(), 2);
            assert_eq!(store.get(0, 1), None);
            assert_eq!(store.get(1, 1), Some((1.0, 5.0, 0.0)));
            store.pop_front();
            assert_eq!(store.len(), 1);
            assert_eq!(store.get(0, 1), Some((1.0, 5.0, 0.0)));
        }
    }
}
