//! Batch aggregation of a collection window into per-template series.
//!
//! §IV-A: `metric_{Q,t} = Aggregate({metric(q) ∀q ∈ Q, t(q) ∈ [t, t+Δt)})`
//! — queries are attributed to the interval containing their *arrival*
//! timestamp. Three metrics are maintained per template at 1-second
//! granularity (`#execution` count, total response time, total examined
//! rows); 1-minute series are derived by [`TemplateSeries::per_minute`].

use crate::catalog::TemplateCatalog;
use pinsql_dbsim::{InstanceMetrics, QueryRecord};
use pinsql_sqlkit::SqlId;
use pinsql_timeseries::resample::{downsample, Downsample};
use pinsql_timeseries::TimeSeries;
use pinsql_workload::TemplateSpec;
use serde::{Deserialize, Serialize};

/// Per-template metric series over a collection window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemplateSeries {
    /// Window start (seconds).
    pub start: i64,
    /// Executions per second (by arrival).
    pub execution_count: Vec<f64>,
    /// Total response time per second, ms.
    pub total_rt_ms: Vec<f64>,
    /// Total examined rows per second.
    pub examined_rows: Vec<f64>,
}

impl TemplateSeries {
    pub(crate) fn zeros(start: i64, n: usize) -> Self {
        Self {
            start,
            execution_count: vec![0.0; n],
            total_rt_ms: vec![0.0; n],
            examined_rows: vec![0.0; n],
        }
    }

    /// Total executions over the whole window.
    pub fn total_executions(&self) -> f64 {
        self.execution_count.iter().sum()
    }

    /// 1-minute execution counts (sum over each 60-second block).
    ///
    /// Only *complete* minutes are emitted: a trailing partial minute would
    /// show an artificial cliff in every template's trend, biasing the
    /// pairwise correlations the clustering step thresholds.
    pub fn per_minute(&self) -> Vec<f64> {
        let full = self.execution_count.len() / 60 * 60;
        downsample(
            &TimeSeries::from_values(self.start, 1, self.execution_count[..full].to_vec()),
            60,
            Downsample::Sum,
        )
        .into_values()
    }
}

/// One template's aggregated view within a case.
#[derive(Debug, Clone)]
pub struct TemplateData {
    pub id: SqlId,
    pub series: TemplateSeries,
    /// Indices into [`CaseData::records`] of this template's queries,
    /// ascending by arrival.
    pub record_idx: Vec<u32>,
}

/// Precomputed per-template cut state carried on a [`CaseData`] when the
/// incremental cut path is active (`CutKind::Incremental`).
///
/// The rows are the 1-minute execution-count series every template would
/// get from [`TemplateSeries::per_minute`], assembled during the snapshot's
/// single cell sweep instead of one `O(window)` re-scan per template —
/// minute counts are integer-valued sums of `1.0` accumulated in ascending
/// second order, so they are bit-identical to the reference derivation and
/// the diagnosis output cannot depend on which path produced them.
///
/// The gate scores are template↔active-session Pearson correlations
/// assembled in `O(1)` per template from the running ingest-time moments
/// (see `IncrementalAggregator`). They are advisory — candidate ranking
/// hints and observability, never substituted into the exact §V/§VI
/// scoring math.
#[derive(Debug, Clone, Default)]
pub struct WindowCut {
    /// First absolute minute of the rows (`ts / 60` for aligned windows).
    pub minute_start: i64,
    /// Per-template 1-minute execution counts, parallel to
    /// [`CaseData::templates`] (sorted by `SqlId`); `n_seconds / 60`
    /// complete minutes each.
    pub minute_rows: Vec<Vec<f64>>,
    /// Advisory per-template Pearson vs the active-session metric over the
    /// window's seconds, parallel to [`CaseData::templates`].
    pub gate: Vec<f64>,
    /// Running-moment updates applied at ingest to build this state.
    pub moments_pushed: u64,
    /// Running-moment contributions evicted past the retention horizon.
    pub moments_evicted: u64,
}

impl WindowCut {
    /// Borrowed minute rows in `&[&[f64]]` shape for matrix assembly.
    pub fn row_refs(&self) -> Vec<&[f64]> {
        self.minute_rows.iter().map(|r| r.as_slice()).collect()
    }
}

/// Everything the root-cause pipeline needs about one collection window.
#[derive(Debug, Clone)]
pub struct CaseData {
    /// Collection window `[ts, te)` in seconds (`ts = a_s − δ_s`).
    pub ts: i64,
    pub te: i64,
    pub catalog: TemplateCatalog,
    /// Instance metrics for the window.
    pub metrics: InstanceMetrics,
    /// All query records arriving in the window, sorted by arrival.
    pub records: Vec<QueryRecord>,
    /// Per-template aggregates, in a stable order (sorted by `SqlId`).
    pub templates: Vec<TemplateData>,
    /// Precomputed minute rows + gate scores when the incremental cut path
    /// produced this case; `None` on the reference/batch path.
    pub cut: Option<Box<WindowCut>>,
}

impl CaseData {
    /// Number of seconds in the window.
    pub fn n_seconds(&self) -> usize {
        (self.te - self.ts) as usize
    }

    /// Index of a template by id.
    pub fn template_index(&self, id: SqlId) -> Option<usize> {
        self.templates.binary_search_by_key(&id, |t| t.id).ok()
    }

    /// The instance active-session series for the window.
    pub fn instance_session(&self) -> &[f64] {
        &self.metrics.active_session
    }
}

/// Aggregates a simulation log into a [`CaseData`] for the window
/// `[ts, te)` seconds.
///
/// `metrics` must cover the window (it is sliced to it); records outside
/// the window are dropped, mirroring the collector's retention query.
pub fn aggregate_case(
    log: &[QueryRecord],
    specs: &[TemplateSpec],
    metrics: &InstanceMetrics,
    ts: i64,
    te: i64,
) -> CaseData {
    assert!(te > ts, "empty collection window");
    let catalog = TemplateCatalog::from_specs(specs);
    let n = (te - ts) as usize;
    let ts_ms = ts as f64 * 1000.0;
    let te_ms = te as f64 * 1000.0;

    // Filter + sort the window's records by arrival. A record with a
    // non-finite timestamp or response time (corrupted log line) carries no
    // usable attribution and is dropped with the out-of-window ones.
    let mut records: Vec<QueryRecord> = log
        .iter()
        .filter(|r| {
            r.start_ms.is_finite()
                && r.response_ms.is_finite()
                && r.start_ms >= ts_ms
                && r.start_ms < te_ms
        })
        .copied()
        .collect();
    records.sort_by(|a, b| a.start_ms.total_cmp(&b.start_ms));

    // Accumulate per template through the catalog's dense slots: `slot_pos`
    // maps a template's slot to its position in `templates` (`u32::MAX` =
    // not yet seen), so attribution is two `Vec` lookups — no hashing.
    let mut slot_pos = vec![u32::MAX; catalog.n_slots()];
    let mut templates: Vec<TemplateData> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let slot = catalog.slot_of_spec(rec.spec) as usize;
        let entry = if slot_pos[slot] == u32::MAX {
            slot_pos[slot] = templates.len() as u32;
            templates.push(TemplateData {
                id: catalog.id_of_slot(slot as u32),
                series: TemplateSeries::zeros(ts, n),
                record_idx: Vec::new(),
            });
            templates.last_mut().expect("just pushed")
        } else {
            &mut templates[slot_pos[slot] as usize]
        };
        let sec = ((rec.start_ms - ts_ms) / 1000.0) as usize;
        let sec = sec.min(n - 1);
        entry.series.execution_count[sec] += 1.0;
        entry.series.total_rt_ms[sec] += rec.response_ms;
        entry.series.examined_rows[sec] += rec.examined_rows as f64;
        entry.record_idx.push(i as u32);
    }
    templates.sort_by_key(|t| t.id);

    let metrics = slice_metrics(metrics, ts, te);
    CaseData { ts, te, catalog, metrics, records, templates, cut: None }
}

/// Restricts instance metrics to `[ts, te)`, zeroing any non-finite sample
/// on the way (a monitoring gap must read as "no load", not poison every
/// downstream correlation).
fn slice_metrics(m: &InstanceMetrics, ts: i64, te: i64) -> InstanceMetrics {
    let lo = (ts - m.start_second).max(0) as usize;
    let hi = ((te - m.start_second).max(0) as usize).min(m.active_session.len());
    let slice = |v: &[f64]| {
        v[lo.min(v.len())..hi.max(lo).min(v.len())]
            .iter()
            .map(|&x| if x.is_finite() { x } else { 0.0 })
            .collect::<Vec<f64>>()
    };
    InstanceMetrics {
        start_second: ts,
        active_session: slice(&m.active_session),
        cpu_usage: slice(&m.cpu_usage),
        iops_usage: slice(&m.iops_usage),
        row_lock_waits: slice(&m.row_lock_waits),
        mdl_waits: slice(&m.mdl_waits),
        qps: slice(&m.qps),
        probes: pinsql_dbsim::probe::ProbeLog {
            samples: m
                .probes
                .samples
                .iter()
                .filter(|p| p.second >= ts && p.second < te)
                .copied()
                .collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_dbsim::probe::ProbeLog;
    use pinsql_workload::{CostProfile, SpecId, TableId};

    fn spec(sql: &str) -> TemplateSpec {
        TemplateSpec::new(sql, CostProfile::point_read(TableId(0)), "t")
    }

    fn rec(spec_idx: usize, start_ms: f64, rt: f64, rows: u64) -> QueryRecord {
        QueryRecord { spec: SpecId(spec_idx), start_ms, response_ms: rt, examined_rows: rows }
    }

    fn empty_metrics(start: i64, n: usize) -> InstanceMetrics {
        InstanceMetrics {
            start_second: start,
            active_session: vec![0.0; n],
            cpu_usage: vec![0.0; n],
            iops_usage: vec![0.0; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![0.0; n],
            probes: ProbeLog::default(),
        }
    }

    #[test]
    fn aggregates_by_arrival_second() {
        let specs = vec![spec("SELECT * FROM a WHERE x = 1"), spec("SELECT * FROM b WHERE x = 1")];
        let log = vec![
            rec(0, 500.0, 10.0, 5),
            rec(0, 900.0, 20.0, 7),
            rec(0, 1500.0, 30.0, 2),
            rec(1, 2500.0, 5.0, 1),
        ];
        let case = aggregate_case(&log, &specs, &empty_metrics(0, 4), 0, 4);
        assert_eq!(case.templates.len(), 2);
        let a_id = case.catalog.id_of_spec(SpecId(0));
        let a = &case.templates[case.template_index(a_id).unwrap()];
        assert_eq!(a.series.execution_count, vec![2.0, 1.0, 0.0, 0.0]);
        assert_eq!(a.series.total_rt_ms, vec![30.0, 30.0, 0.0, 0.0]);
        assert_eq!(a.series.examined_rows, vec![12.0, 2.0, 0.0, 0.0]);
        assert_eq!(a.series.total_executions(), 3.0);
        assert_eq!(a.record_idx.len(), 3);
    }

    #[test]
    fn records_outside_window_are_dropped() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let log = vec![rec(0, -100.0, 1.0, 0), rec(0, 500.0, 1.0, 0), rec(0, 99_999.0, 1.0, 0)];
        let case = aggregate_case(&log, &specs, &empty_metrics(0, 2), 0, 2);
        assert_eq!(case.records.len(), 1);
        assert_eq!(case.templates.len(), 1);
    }

    #[test]
    fn records_are_sorted_by_arrival() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let log = vec![rec(0, 1800.0, 1.0, 0), rec(0, 200.0, 1.0, 0), rec(0, 950.0, 1.0, 0)];
        let case = aggregate_case(&log, &specs, &empty_metrics(0, 2), 0, 2);
        let starts: Vec<f64> = case.records.iter().map(|r| r.start_ms).collect();
        assert_eq!(starts, vec![200.0, 950.0, 1800.0]);
    }

    #[test]
    fn structurally_equal_specs_aggregate_together() {
        let specs = vec![
            spec("SELECT * FROM t WHERE uid = 5"),
            spec("SELECT * FROM t WHERE uid = 999"),
        ];
        let log = vec![rec(0, 100.0, 1.0, 0), rec(1, 200.0, 1.0, 0)];
        let case = aggregate_case(&log, &specs, &empty_metrics(0, 1), 0, 1);
        assert_eq!(case.templates.len(), 1);
        assert_eq!(case.templates[0].series.execution_count[0], 2.0);
    }

    #[test]
    fn metrics_are_sliced_to_window() {
        let mut m = empty_metrics(0, 10);
        m.active_session = (0..10).map(|i| i as f64).collect();
        let case = aggregate_case(&[], &[], &m, 3, 7);
        assert_eq!(case.instance_session(), &[3.0, 4.0, 5.0, 6.0]);
        assert_eq!(case.metrics.start_second, 3);
        assert_eq!(case.n_seconds(), 4);
    }

    #[test]
    fn non_finite_records_are_dropped() {
        let specs = vec![spec("SELECT 1 FROM t WHERE id = 1")];
        let log = vec![
            rec(0, f64::NAN, 1.0, 0),
            rec(0, 500.0, f64::INFINITY, 0),
            rec(0, 900.0, 1.0, 0),
        ];
        let case = aggregate_case(&log, &specs, &empty_metrics(0, 2), 0, 2);
        assert_eq!(case.records.len(), 1);
        assert_eq!(case.records[0].start_ms, 900.0);
    }

    #[test]
    fn sliced_metrics_are_finite() {
        let mut m = empty_metrics(0, 4);
        m.active_session = vec![1.0, f64::NAN, f64::INFINITY, 4.0];
        let case = aggregate_case(&[], &[], &m, 0, 4);
        assert_eq!(case.instance_session(), &[1.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn per_minute_downsampling() {
        let mut s = TemplateSeries::zeros(0, 120);
        for i in 0..120 {
            s.execution_count[i] = 1.0;
        }
        assert_eq!(s.per_minute(), vec![60.0, 60.0]);
    }
}
