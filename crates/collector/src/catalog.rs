//! The template catalog: one entry per distinct SQL template.
//!
//! Workload specs are authored per business intent, but two services can
//! issue structurally identical SQL; aggregation keys on the [`SqlId`]
//! fingerprint (exactly how MySQL statement digests behave), so the catalog
//! folds such specs into one template and remembers which specs
//! contributed.

use pinsql_sqlkit::{SqlId, StatementKind};
use pinsql_workload::{SpecId, TemplateSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything known about one SQL template.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemplateInfo {
    pub id: SqlId,
    /// Canonical normalized statement text.
    pub text: String,
    pub kind: StatementKind,
    pub tables: Vec<String>,
    /// Workload specs that produce this template.
    pub specs: Vec<SpecId>,
    /// Label of the first contributing spec (diagnostic display).
    pub label: String,
}

/// Catalog of templates keyed by [`SqlId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TemplateCatalog {
    map: HashMap<SqlId, TemplateInfo>,
    /// Per-spec template id, aligned with the workload's spec vector.
    spec_to_id: Vec<SqlId>,
}

impl TemplateCatalog {
    /// Builds the catalog from the workload's specs.
    pub fn from_specs(specs: &[TemplateSpec]) -> Self {
        let mut map: HashMap<SqlId, TemplateInfo> = HashMap::with_capacity(specs.len());
        let mut spec_to_id = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let id = spec.template.id;
            spec_to_id.push(id);
            map.entry(id)
                .and_modify(|info| info.specs.push(SpecId(i)))
                .or_insert_with(|| TemplateInfo {
                    id,
                    text: spec.template.text.clone(),
                    kind: spec.template.kind,
                    tables: spec.template.tables.clone(),
                    specs: vec![SpecId(i)],
                    label: spec.label.clone(),
                });
        }
        Self { map, spec_to_id }
    }

    /// The template id a spec maps to.
    #[inline]
    pub fn id_of_spec(&self, spec: SpecId) -> SqlId {
        self.spec_to_id[spec.0]
    }

    /// Template info by id.
    pub fn get(&self, id: SqlId) -> Option<&TemplateInfo> {
        self.map.get(&id)
    }

    /// Number of distinct templates.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all templates (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &TemplateInfo> {
        self.map.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_workload::{CostProfile, TableId};

    #[test]
    fn folds_structurally_identical_specs() {
        let c = CostProfile::point_read(TableId(0));
        let specs = vec![
            TemplateSpec::new("SELECT * FROM t WHERE a = 1", c.clone(), "svc_a.read"),
            TemplateSpec::new("SELECT * FROM t WHERE a = 22", c.clone(), "svc_b.read"),
            TemplateSpec::new("SELECT * FROM u WHERE a = 1", c, "svc_c.read"),
        ];
        let catalog = TemplateCatalog::from_specs(&specs);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.id_of_spec(SpecId(0)), catalog.id_of_spec(SpecId(1)));
        assert_ne!(catalog.id_of_spec(SpecId(0)), catalog.id_of_spec(SpecId(2)));
        let info = catalog.get(catalog.id_of_spec(SpecId(0))).unwrap();
        assert_eq!(info.specs, vec![SpecId(0), SpecId(1)]);
        assert_eq!(info.label, "svc_a.read");
    }

    #[test]
    fn empty_catalog() {
        let catalog = TemplateCatalog::from_specs(&[]);
        assert!(catalog.is_empty());
        assert_eq!(catalog.iter().count(), 0);
    }
}
