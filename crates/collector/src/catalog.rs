//! The template catalog: one entry per distinct SQL template.
//!
//! Workload specs are authored per business intent, but two services can
//! issue structurally identical SQL; aggregation keys on the [`SqlId`]
//! fingerprint (exactly how MySQL statement digests behave), so the catalog
//! folds such specs into one template and remembers which specs
//! contributed.
//!
//! Because the spec set is fixed at catalog construction, every distinct
//! template also gets a dense **slot** — `0..n_slots()` in first-appearance
//! order. Slots are what the ingest hot path indexes with: attributing a
//! query record is two `Vec` lookups (`spec → slot`, `slot → cell`), no
//! hashing at all. The sparse `SqlId` fingerprint remains the public,
//! digest-compatible key; slots are a catalog-local compression of it.

use pinsql_sqlkit::{SqlId, StatementKind};
use pinsql_timeseries::FxHashMap;
use pinsql_workload::{SpecId, TemplateSpec};
use serde::{Deserialize, Serialize};

/// Everything known about one SQL template.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemplateInfo {
    pub id: SqlId,
    /// Canonical normalized statement text.
    pub text: String,
    pub kind: StatementKind,
    pub tables: Vec<String>,
    /// Workload specs that produce this template.
    pub specs: Vec<SpecId>,
    /// Label of the first contributing spec (diagnostic display).
    pub label: String,
}

/// Catalog of templates keyed by [`SqlId`], with a dense slot index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TemplateCatalog {
    map: FxHashMap<SqlId, TemplateInfo>,
    /// Per-spec template id, aligned with the workload's spec vector.
    spec_to_id: Vec<SqlId>,
    /// Per-spec dense slot, aligned with the workload's spec vector.
    spec_to_slot: Vec<u32>,
    /// Slot → template id, in first-appearance order over the spec vector.
    slot_to_id: Vec<SqlId>,
    id_to_slot: FxHashMap<SqlId, u32>,
}

impl TemplateCatalog {
    /// Builds the catalog from the workload's specs.
    pub fn from_specs(specs: &[TemplateSpec]) -> Self {
        let mut map: FxHashMap<SqlId, TemplateInfo> = FxHashMap::default();
        map.reserve(specs.len());
        let mut spec_to_id = Vec::with_capacity(specs.len());
        let mut spec_to_slot = Vec::with_capacity(specs.len());
        let mut slot_to_id: Vec<SqlId> = Vec::new();
        let mut id_to_slot: FxHashMap<SqlId, u32> = FxHashMap::default();
        for (i, spec) in specs.iter().enumerate() {
            let id = spec.template.id;
            spec_to_id.push(id);
            let slot = *id_to_slot.entry(id).or_insert_with(|| {
                slot_to_id.push(id);
                (slot_to_id.len() - 1) as u32
            });
            spec_to_slot.push(slot);
            map.entry(id)
                .and_modify(|info| info.specs.push(SpecId(i)))
                .or_insert_with(|| TemplateInfo {
                    id,
                    text: spec.template.text.clone(),
                    kind: spec.template.kind,
                    tables: spec.template.tables.clone(),
                    specs: vec![SpecId(i)],
                    label: spec.label.clone(),
                });
        }
        Self { map, spec_to_id, spec_to_slot, slot_to_id, id_to_slot }
    }

    /// The template id a spec maps to.
    #[inline]
    pub fn id_of_spec(&self, spec: SpecId) -> SqlId {
        self.spec_to_id[spec.0]
    }

    /// The dense slot a spec's template occupies.
    #[inline]
    pub fn slot_of_spec(&self, spec: SpecId) -> u32 {
        self.spec_to_slot[spec.0]
    }

    /// The template id occupying a slot.
    #[inline]
    pub fn id_of_slot(&self, slot: u32) -> SqlId {
        self.slot_to_id[slot as usize]
    }

    /// The slot of a template id, if the id is in the catalog.
    #[inline]
    pub fn slot_of_id(&self, id: SqlId) -> Option<u32> {
        self.id_to_slot.get(&id).copied()
    }

    /// Number of dense slots (== number of distinct templates).
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.slot_to_id.len()
    }

    /// Template info by id.
    pub fn get(&self, id: SqlId) -> Option<&TemplateInfo> {
        self.map.get(&id)
    }

    /// Number of distinct templates.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all templates (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &TemplateInfo> {
        self.map.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_workload::{CostProfile, TableId};

    #[test]
    fn folds_structurally_identical_specs() {
        let c = CostProfile::point_read(TableId(0));
        let specs = vec![
            TemplateSpec::new("SELECT * FROM t WHERE a = 1", c.clone(), "svc_a.read"),
            TemplateSpec::new("SELECT * FROM t WHERE a = 22", c.clone(), "svc_b.read"),
            TemplateSpec::new("SELECT * FROM u WHERE a = 1", c, "svc_c.read"),
        ];
        let catalog = TemplateCatalog::from_specs(&specs);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.id_of_spec(SpecId(0)), catalog.id_of_spec(SpecId(1)));
        assert_ne!(catalog.id_of_spec(SpecId(0)), catalog.id_of_spec(SpecId(2)));
        let info = catalog.get(catalog.id_of_spec(SpecId(0))).unwrap();
        assert_eq!(info.specs, vec![SpecId(0), SpecId(1)]);
        assert_eq!(info.label, "svc_a.read");
    }

    #[test]
    fn slots_are_dense_and_first_appearance_ordered() {
        let c = CostProfile::point_read(TableId(0));
        let specs = vec![
            TemplateSpec::new("SELECT * FROM t WHERE a = 1", c.clone(), "a"),
            TemplateSpec::new("SELECT * FROM u WHERE a = 1", c.clone(), "b"),
            TemplateSpec::new("SELECT * FROM t WHERE a = 9", c.clone(), "c"), // same template as spec 0
            TemplateSpec::new("SELECT * FROM v WHERE a = 1", c, "d"),
        ];
        let catalog = TemplateCatalog::from_specs(&specs);
        assert_eq!(catalog.n_slots(), 3);
        assert_eq!(catalog.slot_of_spec(SpecId(0)), 0);
        assert_eq!(catalog.slot_of_spec(SpecId(1)), 1);
        assert_eq!(catalog.slot_of_spec(SpecId(2)), 0, "folded spec shares its slot");
        assert_eq!(catalog.slot_of_spec(SpecId(3)), 2);
        for slot in 0..catalog.n_slots() as u32 {
            let id = catalog.id_of_slot(slot);
            assert_eq!(catalog.slot_of_id(id), Some(slot), "slot {slot} round-trips");
        }
        assert_eq!(catalog.slot_of_id(SqlId(0xDEAD_BEEF)), None);
    }

    #[test]
    fn empty_catalog() {
        let catalog = TemplateCatalog::from_specs(&[]);
        assert!(catalog.is_empty());
        assert_eq!(catalog.n_slots(), 0);
        assert_eq!(catalog.iter().count(), 0);
    }
}
