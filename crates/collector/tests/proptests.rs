//! Property-based tests of the aggregation layer: conservation between
//! raw records and per-template series.

use pinsql_collector::{aggregate_case, HistoryStore, TemplateCatalog};
use pinsql_dbsim::{InstanceMetrics, QueryRecord};
use pinsql_sqlkit::SqlId;
use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};
use proptest::prelude::*;

fn empty_metrics(n: usize) -> InstanceMetrics {
    InstanceMetrics {
        start_second: 0,
        active_session: vec![0.0; n],
        cpu_usage: vec![0.0; n],
        iops_usage: vec![0.0; n],
        row_lock_waits: vec![0.0; n],
        mdl_waits: vec![0.0; n],
        qps: vec![0.0; n],
        probes: Default::default(),
    }
}

fn specs(n: usize) -> Vec<TemplateSpec> {
    (0..n)
        .map(|i| {
            TemplateSpec::new(
                &format!("SELECT c{i} FROM t{i} WHERE id = 1"),
                CostProfile::point_read(TableId(0)),
                format!("s{i}"),
            )
        })
        .collect()
}

proptest! {
    /// Every in-window record is counted exactly once; totals are
    /// conserved across the per-template split.
    #[test]
    fn aggregation_conserves_counts_and_sums(
        raw in prop::collection::vec(
            (0usize..5, -10_000.0f64..130_000.0, 0.1f64..5_000.0, 0u64..1_000),
            0..300,
        ),
    ) {
        let specs = specs(5);
        let log: Vec<QueryRecord> = raw
            .iter()
            .map(|&(s, start, rt, rows)| QueryRecord {
                spec: SpecId(s),
                start_ms: start,
                response_ms: rt,
                examined_rows: rows,
            })
            .collect();
        let n = 120i64;
        let case = aggregate_case(&log, &specs, &empty_metrics(n as usize), 0, n);

        let in_window =
            log.iter().filter(|r| r.start_ms >= 0.0 && r.start_ms < n as f64 * 1000.0);
        let expect_count = in_window.clone().count() as f64;
        let expect_rt: f64 = in_window.clone().map(|r| r.response_ms).sum();
        let expect_rows: f64 = in_window.map(|r| r.examined_rows as f64).sum();

        let got_count: f64 =
            case.templates.iter().map(|t| t.series.execution_count.iter().sum::<f64>()).sum();
        let got_rt: f64 =
            case.templates.iter().map(|t| t.series.total_rt_ms.iter().sum::<f64>()).sum();
        let got_rows: f64 =
            case.templates.iter().map(|t| t.series.examined_rows.iter().sum::<f64>()).sum();

        prop_assert!((got_count - expect_count).abs() < 1e-9);
        prop_assert!((got_rt - expect_rt).abs() < 1e-6 * expect_rt.max(1.0));
        prop_assert!((got_rows - expect_rows).abs() < 1e-9);
        prop_assert_eq!(case.records.len() as f64, expect_count);
        // Record indices are a partition of the record set.
        let mut all_idx: Vec<u32> =
            case.templates.iter().flat_map(|t| t.record_idx.iter().copied()).collect();
        all_idx.sort_unstable();
        prop_assert_eq!(all_idx, (0..case.records.len() as u32).collect::<Vec<_>>());
    }

    /// Per-minute counts sum to the per-second counts over complete
    /// minutes.
    #[test]
    fn per_minute_conserves_complete_minutes(
        counts in prop::collection::vec(0u32..50, 60..240),
    ) {
        let specs = specs(1);
        let mut log = Vec::new();
        for (sec, &k) in counts.iter().enumerate() {
            for j in 0..k {
                log.push(QueryRecord {
                    spec: SpecId(0),
                    start_ms: sec as f64 * 1000.0 + j as f64,
                    response_ms: 1.0,
                    examined_rows: 0,
                });
            }
        }
        let n = counts.len() as i64;
        let case = aggregate_case(&log, &specs, &empty_metrics(n as usize), 0, n);
        prop_assume!(!case.templates.is_empty());
        let per_min = case.templates[0].series.per_minute();
        prop_assert_eq!(per_min.len(), counts.len() / 60);
        for (m, &v) in per_min.iter().enumerate() {
            let expect: u32 = counts[m * 60..(m + 1) * 60].iter().sum();
            prop_assert_eq!(v, expect as f64);
        }
    }

    /// History store: recording in any order, window_filled returns the
    /// accumulated counts and zero elsewhere.
    #[test]
    fn history_store_accumulates(
        entries in prop::collection::vec((0i64..200, 0.5f64..100.0), 1..100),
    ) {
        let mut store = HistoryStore::new();
        let id = SqlId(9);
        for &(minute, count) in &entries {
            store.record(id, minute, count);
        }
        let got = store.window_filled(id, 0, 200);
        for m in 0..200i64 {
            let expect: f64 =
                entries.iter().filter(|&&(mm, _)| mm == m).map(|&(_, c)| c).sum();
            prop_assert!((got[m as usize] - expect).abs() < 1e-9, "minute {m}");
        }
    }

    /// Structurally identical specs always share a catalog entry.
    #[test]
    fn catalog_folds_by_structure(lit_a in 0u32..1000, lit_b in 0u32..1000) {
        let s = vec![
            TemplateSpec::new(
                &format!("SELECT a FROM t WHERE id = {lit_a}"),
                CostProfile::point_read(TableId(0)),
                "x",
            ),
            TemplateSpec::new(
                &format!("SELECT a FROM t WHERE id = {lit_b}"),
                CostProfile::point_read(TableId(0)),
                "y",
            ),
        ];
        let catalog = TemplateCatalog::from_specs(&s);
        prop_assert_eq!(catalog.len(), 1);
        prop_assert_eq!(catalog.id_of_spec(SpecId(0)), catalog.id_of_spec(SpecId(1)));
    }
}
