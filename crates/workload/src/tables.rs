//! Logical table definitions.
//!
//! The simulator never stores rows; it only needs each table's *lock
//! geometry*: how many rows exist, how many of them are "hot" (fought over
//! by concurrent writers), and a human-readable name for generated SQL.

use serde::{Deserialize, Serialize};

/// Index of a table within [`crate::Workload::tables`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub usize);

/// A logical table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    pub name: String,
    /// Total row count (drives full-scan examined-rows costs).
    pub rows: u64,
    /// Number of distinct hot-row slots contended writes hash into. Smaller
    /// values mean more row-lock conflicts.
    pub hot_slots: u32,
}

impl TableDef {
    /// Creates a table with the given name, cardinality and hot-slot count.
    ///
    /// # Panics
    /// Panics if `hot_slots` is zero (the lock model needs at least one
    /// slot).
    pub fn new(name: impl Into<String>, rows: u64, hot_slots: u32) -> Self {
        assert!(hot_slots > 0, "a table needs at least one hot slot");
        Self { name: name.into(), rows, hot_slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_def_construction() {
        let t = TableDef::new("sales", 10_000_000, 64);
        assert_eq!(t.name, "sales");
        assert_eq!(t.rows, 10_000_000);
        assert_eq!(t.hot_slots, 64);
    }

    #[test]
    #[should_panic(expected = "at least one hot slot")]
    fn zero_hot_slots_panics() {
        let _ = TableDef::new("t", 10, 0);
    }
}
