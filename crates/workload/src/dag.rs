//! The microservice API call DAG (§VI, Fig. 4).
//!
//! One user request enters at a *root* API; each API issues some SQL
//! templates directly and calls child APIs, possibly probabilistically
//! (`IF` branches) or repeatedly (`FOR` loops). All templates reachable
//! from one root therefore share the root's traffic trend — the property
//! PinSQL's clustering step exploits.

use crate::dag::expansion::Expansion;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Index of an API within [`ApiDag::apis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ApiId(pub usize);

/// Index of a template spec within [`crate::Workload::specs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpecId(pub usize);

/// An edge: call the target `count` times, each with probability `prob`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Call<T> {
    pub target: T,
    /// Loop multiplicity (`FOR` in the paper's Fig. 4 code blocks).
    pub count: u32,
    /// Branch probability (`IF`): each of the `count` attempts fires
    /// independently with this probability.
    pub prob: f64,
}

impl<T> Call<T> {
    /// An unconditional single call.
    pub fn once(target: T) -> Self {
        Self { target, count: 1, prob: 1.0 }
    }

    /// `count` unconditional calls.
    pub fn times(target: T, count: u32) -> Self {
        Self { target, count, prob: 1.0 }
    }

    /// A single call taken with probability `prob`.
    pub fn maybe(target: T, prob: f64) -> Self {
        Self { target, count: 1, prob }
    }

    fn expected(&self) -> f64 {
        self.count as f64 * self.prob
    }
}

/// One microservice API: the templates it issues and the APIs it calls.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Api {
    pub name: String,
    pub queries: Vec<Call<SpecId>>,
    pub children: Vec<Call<ApiId>>,
}

impl Api {
    /// An API issuing no queries and calling no children.
    pub fn named(name: impl Into<String>) -> Self {
        Self { name: name.into(), queries: Vec::new(), children: Vec::new() }
    }

    /// Adds a query call (builder style).
    pub fn query(mut self, call: Call<SpecId>) -> Self {
        self.queries.push(call);
        self
    }

    /// Adds a child-API call (builder style).
    pub fn child(mut self, call: Call<ApiId>) -> Self {
        self.children.push(call);
        self
    }
}

/// The call graph. Must be acyclic; [`ApiDag::validate`] checks.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ApiDag {
    pub apis: Vec<Api>,
}

impl ApiDag {
    /// Adds an API, returning its id.
    pub fn push(&mut self, api: Api) -> ApiId {
        self.apis.push(api);
        ApiId(self.apis.len() - 1)
    }

    /// Checks that every edge targets an existing API/spec (bounds given by
    /// `n_specs`) and that the graph is acyclic. Returns a description of
    /// the first problem found.
    pub fn validate(&self, n_specs: usize) -> Result<(), String> {
        for (i, api) in self.apis.iter().enumerate() {
            for q in &api.queries {
                if q.target.0 >= n_specs {
                    return Err(format!("api {} ({}) references missing spec {}", i, api.name, q.target.0));
                }
                if !(0.0..=1.0).contains(&q.prob) {
                    return Err(format!("api {} query prob {} out of range", i, q.prob));
                }
            }
            for c in &api.children {
                if c.target.0 >= self.apis.len() {
                    return Err(format!("api {} ({}) calls missing api {}", i, api.name, c.target.0));
                }
                if !(0.0..=1.0).contains(&c.prob) {
                    return Err(format!("api {} child prob {} out of range", i, c.prob));
                }
            }
        }
        // Cycle detection via iterative DFS coloring.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.apis.len()];
        for start in 0..self.apis.len() {
            if color[start] != Color::White {
                continue;
            }
            // stack of (node, next child index)
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                if *next < self.apis[node].children.len() {
                    let child = self.apis[node].children[*next].target.0;
                    *next += 1;
                    match color[child] {
                        Color::White => {
                            color[child] = Color::Gray;
                            stack.push((child, 0));
                        }
                        Color::Gray => {
                            return Err(format!(
                                "cycle through api {} ({})",
                                child, self.apis[child].name
                            ));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Expected number of executions of each spec per invocation of `root`
    /// (probabilities and loop counts folded through the DAG). Only specs
    /// with a positive expectation are returned.
    pub fn expected_multiplicities(&self, root: ApiId) -> Vec<(SpecId, f64)> {
        let mut acc: Vec<f64> = vec![0.0; self.max_spec_index() + 1];
        self.fold_expected(root, 1.0, &mut acc);
        acc.into_iter()
            .enumerate()
            .filter(|(_, m)| *m > 0.0)
            .map(|(i, m)| (SpecId(i), m))
            .collect()
    }

    fn max_spec_index(&self) -> usize {
        self.apis
            .iter()
            .flat_map(|a| a.queries.iter())
            .map(|q| q.target.0)
            .max()
            .unwrap_or(0)
    }

    fn fold_expected(&self, api: ApiId, weight: f64, acc: &mut Vec<f64>) {
        let a = &self.apis[api.0];
        for q in &a.queries {
            if q.target.0 >= acc.len() {
                acc.resize(q.target.0 + 1, 0.0);
            }
            acc[q.target.0] += weight * q.expected();
        }
        for c in &a.children {
            self.fold_expected(c.target, weight * c.expected(), acc);
        }
    }

    /// Samples the concrete multiset of spec executions triggered by one
    /// invocation of `root`, appending `(spec, count)`-expanded entries to
    /// `out`.
    pub fn sample_invocation(&self, root: ApiId, rng: &mut impl Rng, out: &mut Vec<SpecId>) {
        let mut stack = vec![(root, 1u32)];
        while let Some((api, times)) = stack.pop() {
            for _ in 0..times {
                let a = &self.apis[api.0];
                for q in &a.queries {
                    for _ in 0..q.count {
                        if q.prob >= 1.0 || rng.random::<f64>() < q.prob {
                            out.push(q.target);
                        }
                    }
                }
                for c in &a.children {
                    let mut fired = 0u32;
                    for _ in 0..c.count {
                        if c.prob >= 1.0 || rng.random::<f64>() < c.prob {
                            fired += 1;
                        }
                    }
                    if fired > 0 {
                        stack.push((c.target, fired));
                    }
                }
            }
        }
    }

    /// Returns an [`Expansion`] view precomputing per-root expectations.
    pub fn expansion(&self) -> Expansion<'_> {
        Expansion::new(self)
    }
}

pub mod expansion {
    //! Precomputed expected multiplicities for every root.

    use super::{ApiDag, ApiId, SpecId};

    /// Caches `expected_multiplicities` for all APIs of a DAG.
    pub struct Expansion<'a> {
        dag: &'a ApiDag,
        cache: Vec<Vec<(SpecId, f64)>>,
    }

    impl<'a> Expansion<'a> {
        pub(super) fn new(dag: &'a ApiDag) -> Self {
            let cache = (0..dag.apis.len())
                .map(|i| dag.expected_multiplicities(ApiId(i)))
                .collect();
            Self { dag, cache }
        }

        /// Expected spec multiplicities per invocation of `api`.
        pub fn of(&self, api: ApiId) -> &[(SpecId, f64)] {
            &self.cache[api.0]
        }

        /// The underlying DAG.
        pub fn dag(&self) -> &ApiDag {
            self.dag
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    /// Builds the paper's Fig. 4 topology:
    /// API1 → {API2, API3, API4×loop}, API2 → API4 (IF), API5 → API6.
    fn fig4() -> ApiDag {
        let mut dag = ApiDag::default();
        let api6 = dag.push(Api::named("api6").query(Call::once(SpecId(5))));
        let api4 = dag.push(Api::named("api4").query(Call::once(SpecId(3))));
        let api3 = dag.push(Api::named("api3").query(Call::once(SpecId(2))));
        let api2 = dag.push(
            Api::named("api2").query(Call::once(SpecId(1))).child(Call::maybe(api4, 0.5)),
        );
        let _api1 = dag.push(
            Api::named("api1")
                .query(Call::once(SpecId(0)))
                .child(Call::once(api2))
                .child(Call::once(api3))
                .child(Call::times(api4, 3)),
        );
        let _api5 = dag.push(Api::named("api5").query(Call::once(SpecId(4))).child(Call::once(api6)));
        dag
    }

    #[test]
    fn validate_accepts_fig4() {
        assert_eq!(fig4().validate(6), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_spec_and_cycles() {
        let dag = fig4();
        assert!(dag.validate(3).is_err());
        let mut cyclic = ApiDag::default();
        let a = cyclic.push(Api::named("a"));
        let b = cyclic.push(Api::named("b").child(Call::once(a)));
        cyclic.apis[a.0].children.push(Call::once(b));
        assert!(cyclic.validate(0).unwrap_err().contains("cycle"));
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut dag = ApiDag::default();
        dag.push(Api::named("x").query(Call { target: SpecId(0), count: 1, prob: 1.5 }));
        assert!(dag.validate(1).is_err());
    }

    #[test]
    fn expected_multiplicities_fold_loops_and_branches() {
        let dag = fig4();
        // api1 is index 4 in construction order.
        let mults = dag.expected_multiplicities(ApiId(4));
        let get = |s: usize| mults.iter().find(|(id, _)| id.0 == s).map(|(_, m)| *m);
        assert_eq!(get(0), Some(1.0)); // api1's own query
        assert_eq!(get(1), Some(1.0)); // via api2
        assert_eq!(get(2), Some(1.0)); // via api3
        // api4's query: 3 unconditional + 0.5 via api2's IF branch.
        assert!((get(3).unwrap() - 3.5).abs() < 1e-12);
        assert_eq!(get(4), None); // api5's business is unreachable
        assert_eq!(get(5), None);
    }

    #[test]
    fn sample_invocation_mean_matches_expectation() {
        let dag = fig4();
        let mut rng = rng_from_seed(9);
        let n = 20_000;
        let mut count3 = 0usize;
        let mut out = Vec::new();
        for _ in 0..n {
            out.clear();
            dag.sample_invocation(ApiId(4), &mut rng, &mut out);
            count3 += out.iter().filter(|s| s.0 == 3).count();
        }
        let mean = count3 as f64 / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn unreachable_business_stays_silent() {
        let dag = fig4();
        let mut rng = rng_from_seed(10);
        let mut out = Vec::new();
        dag.sample_invocation(ApiId(4), &mut rng, &mut out);
        assert!(out.iter().all(|s| s.0 != 4 && s.0 != 5));
    }

    #[test]
    fn expansion_caches_all_roots() {
        let dag = fig4();
        let exp = dag.expansion();
        assert_eq!(exp.of(ApiId(5)).len(), 2); // api5 reaches specs 4 and 5
        assert_eq!(exp.dag().apis.len(), 6);
    }
}
