//! Arrival-rate patterns and rate events.
//!
//! Root-API traffic is a non-homogeneous Poisson process: a base rate
//! modulated by a diurnal sinusoid and multiplicative noise, further scaled
//! by [`RateEvent`]s — the instrument used to inject the paper's
//! category-1 anomalies (business scenario change / QPS sudden increase).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The time shape of a rate event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventShape {
    /// Full multiplier over the whole window (a level shift while active).
    Step,
    /// Linear ramp from 1× at the window start to the multiplier at the end.
    RampUp,
    /// Triangular spike peaking mid-window.
    Spike,
}

/// A multiplicative rate modifier over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateEvent {
    pub start: i64,
    pub end: i64,
    pub multiplier: f64,
    pub shape: EventShape,
}

impl RateEvent {
    /// The factor this event applies at time `t` (1.0 outside the window).
    pub fn factor(&self, t: i64) -> f64 {
        if t < self.start || t >= self.end || self.end <= self.start {
            return 1.0;
        }
        let span = (self.end - self.start) as f64;
        let frac = (t - self.start) as f64 / span;
        match self.shape {
            EventShape::Step => self.multiplier,
            EventShape::RampUp => 1.0 + (self.multiplier - 1.0) * frac,
            EventShape::Spike => {
                // triangular: 1 → multiplier at midpoint → 1
                let tri = 1.0 - (2.0 * frac - 1.0).abs();
                1.0 + (self.multiplier - 1.0) * tri
            }
        }
    }
}

/// A root API's arrival-rate pattern (invocations per second).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficPattern {
    /// Base invocations per second.
    pub base_rate: f64,
    /// Relative amplitude of the diurnal sinusoid in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Period of the sinusoid in seconds (86 400 for a true day; scenarios
    /// use shorter periods so tests see variation quickly).
    pub period_s: f64,
    /// Phase offset in seconds.
    pub phase_s: f64,
    /// Standard deviation of multiplicative per-second noise.
    pub noise: f64,
    /// Rate events (spikes, ramps, steps).
    pub events: Vec<RateEvent>,
}

impl TrafficPattern {
    /// A steady pattern with mild noise and no diurnal variation.
    pub fn steady(base_rate: f64) -> Self {
        Self {
            base_rate,
            diurnal_amplitude: 0.0,
            period_s: 86_400.0,
            phase_s: 0.0,
            noise: 0.03,
            events: Vec::new(),
        }
    }

    /// A diurnal pattern: `base · (1 + a · sin(2π (t+phase)/period))`.
    pub fn diurnal(base_rate: f64, amplitude: f64, period_s: f64, phase_s: f64) -> Self {
        Self {
            base_rate,
            diurnal_amplitude: amplitude,
            period_s,
            phase_s,
            noise: 0.03,
            events: Vec::new(),
        }
    }

    /// Adds an event (builder style).
    pub fn with_event(mut self, event: RateEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Sets the noise level (builder style).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// The *mean* rate at time `t` (noise excluded).
    pub fn mean_rate(&self, t: i64) -> f64 {
        let diurnal = 1.0
            + self.diurnal_amplitude
                * (std::f64::consts::TAU * (t as f64 + self.phase_s) / self.period_s).sin();
        let event_factor: f64 = self.events.iter().map(|e| e.factor(t)).product();
        (self.base_rate * diurnal * event_factor).max(0.0)
    }

    /// Samples the realized rate at `t`: mean rate with multiplicative
    /// Gaussian noise, clamped at zero.
    pub fn sample_rate(&self, t: i64, rng: &mut impl Rng) -> f64 {
        let mean = self.mean_rate(t);
        if self.noise <= 0.0 {
            return mean;
        }
        let noise = 1.0 + self.noise * crate::rng::standard_normal(rng);
        (mean * noise).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn steady_pattern_is_flat() {
        let p = TrafficPattern::steady(50.0);
        assert_eq!(p.mean_rate(0), 50.0);
        assert_eq!(p.mean_rate(10_000), 50.0);
    }

    #[test]
    fn diurnal_oscillates_around_base() {
        let p = TrafficPattern::diurnal(100.0, 0.5, 1000.0, 0.0);
        assert!((p.mean_rate(0) - 100.0).abs() < 1e-9);
        assert!((p.mean_rate(250) - 150.0).abs() < 1e-9); // sin peak
        assert!((p.mean_rate(750) - 50.0).abs() < 1e-9); // sin trough
    }

    #[test]
    fn step_event_multiplies_inside_window() {
        let p = TrafficPattern::steady(10.0).with_event(RateEvent {
            start: 100,
            end: 200,
            multiplier: 3.0,
            shape: EventShape::Step,
        });
        assert_eq!(p.mean_rate(99), 10.0);
        assert_eq!(p.mean_rate(100), 30.0);
        assert_eq!(p.mean_rate(199), 30.0);
        assert_eq!(p.mean_rate(200), 10.0);
    }

    #[test]
    fn ramp_event_grows_linearly() {
        let e = RateEvent { start: 0, end: 100, multiplier: 5.0, shape: EventShape::RampUp };
        assert!((e.factor(0) - 1.0).abs() < 1e-9);
        assert!((e.factor(50) - 3.0).abs() < 1e-9);
        assert!((e.factor(99) - 4.96).abs() < 0.01);
    }

    #[test]
    fn spike_event_peaks_mid_window() {
        let e = RateEvent { start: 0, end: 100, multiplier: 9.0, shape: EventShape::Spike };
        assert!((e.factor(50) - 9.0).abs() < 1e-9);
        assert!(e.factor(10) < e.factor(30));
        assert!(e.factor(90) < e.factor(70));
        assert_eq!(e.factor(100), 1.0);
        assert_eq!(e.factor(-1), 1.0);
    }

    #[test]
    fn degenerate_event_window_is_identity() {
        let e = RateEvent { start: 100, end: 100, multiplier: 9.0, shape: EventShape::Step };
        assert_eq!(e.factor(100), 1.0);
    }

    #[test]
    fn overlapping_events_compose_multiplicatively() {
        let p = TrafficPattern::steady(10.0)
            .with_event(RateEvent { start: 0, end: 100, multiplier: 2.0, shape: EventShape::Step })
            .with_event(RateEvent { start: 50, end: 150, multiplier: 3.0, shape: EventShape::Step });
        assert_eq!(p.mean_rate(25), 20.0);
        assert_eq!(p.mean_rate(75), 60.0);
        assert_eq!(p.mean_rate(125), 30.0);
    }

    #[test]
    fn sampled_rate_is_nonnegative_and_centred() {
        let p = TrafficPattern::steady(20.0).with_noise(0.1);
        let mut rng = rng_from_seed(13);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let r = p.sample_rate(0, &mut rng);
            assert!(r >= 0.0);
            sum += r;
        }
        let mean = sum / n as f64;
        assert!((mean - 20.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zero_noise_sample_equals_mean() {
        let p = TrafficPattern::steady(20.0).with_noise(0.0);
        let mut rng = rng_from_seed(14);
        assert_eq!(p.sample_rate(5, &mut rng), 20.0);
    }
}
