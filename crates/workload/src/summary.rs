//! Workload summaries and capacity forecasts.
//!
//! Operators (and the scenario generator's tests) need a quick answer to
//! "what does this workload demand from the instance?" before running a
//! simulation: expected QPS per template/table, expected CPU/IO core
//! demand, and a utilization forecast for a given instance size. The
//! forecast is first-order (no queueing): it flags *offered load*, which
//! is what determines whether an injected anomaly can saturate.

use crate::dag::SpecId;
use crate::tables::TableId;
use crate::Workload;
use serde::{Deserialize, Serialize};

/// Per-template expected demand at a point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateDemand {
    pub spec: SpecId,
    pub label: String,
    /// Expected executions per second.
    pub rate: f64,
    /// Expected CPU demand, core-seconds per second.
    pub cpu_load: f64,
    /// Expected IO demand, channel-seconds per second.
    pub io_load: f64,
    /// Expected examined rows per second.
    pub rows_per_s: f64,
}

/// A whole-workload snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Evaluation instant (seconds).
    pub at: i64,
    pub total_qps: f64,
    /// Offered CPU load in core-seconds per second (1.0 = one busy core).
    pub total_cpu_load: f64,
    pub total_io_load: f64,
    pub per_template: Vec<TemplateDemand>,
}

impl WorkloadSummary {
    /// Computes the snapshot at time `t`.
    pub fn at(workload: &Workload, t: i64) -> Self {
        let rates = workload.expected_spec_rates(t);
        let mut per_template = Vec::with_capacity(workload.specs.len());
        let mut total_qps = 0.0;
        let mut total_cpu = 0.0;
        let mut total_io = 0.0;
        for (i, spec) in workload.specs.iter().enumerate() {
            let rate = rates.get(i).copied().unwrap_or(0.0);
            let cpu_load = rate * spec.cost.cpu_ms / 1000.0;
            let io_load = rate * spec.cost.io_ms / 1000.0;
            total_qps += rate;
            total_cpu += cpu_load;
            total_io += io_load;
            per_template.push(TemplateDemand {
                spec: SpecId(i),
                label: spec.label.clone(),
                rate,
                cpu_load,
                io_load,
                rows_per_s: rate * spec.cost.examined_rows,
            });
        }
        Self { at: t, total_qps, total_cpu_load: total_cpu, total_io_load: total_io, per_template }
    }

    /// Forecast CPU utilization on an instance with `cores` (offered load
    /// over capacity, uncapped — values above 1.0 mean saturation and
    /// growing backlogs).
    pub fn cpu_utilization(&self, cores: f64) -> f64 {
        assert!(cores > 0.0, "cores must be positive");
        self.total_cpu_load / cores
    }

    /// Per-table expected QPS (all templates touching the table summed;
    /// templates without a lock footprint contribute to no table).
    pub fn qps_by_table(&self, workload: &Workload) -> Vec<(TableId, f64)> {
        let mut by_table = vec![0.0f64; workload.tables.len()];
        for d in &self.per_template {
            if let Some(fp) = workload.specs[d.spec.0].cost.lock {
                by_table[fp.table.0] += d.rate;
            }
        }
        by_table
            .into_iter()
            .enumerate()
            .map(|(i, q)| (TableId(i), q))
            .collect()
    }

    /// The `k` templates with the highest expected CPU load.
    pub fn top_cpu(&self, k: usize) -> Vec<&TemplateDemand> {
        let mut v: Vec<&TemplateDemand> = self.per_template.iter().collect();
        v.sort_by(|a, b| b.cpu_load.total_cmp(&a.cpu_load));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Api, Call};
    use crate::{ApiDag, CostProfile, TableDef, TemplateSpec, TrafficPattern};

    fn workload() -> Workload {
        let t0 = TableId(0);
        let t1 = TableId(1);
        let specs = vec![
            TemplateSpec::new(
                "SELECT a FROM x WHERE id = 1",
                CostProfile { cpu_ms: 2.0, io_ms: 1.0, examined_rows: 10.0, sigma: 0.0, lock: None }
                    .reading(t0),
                "cheap",
            ),
            TemplateSpec::new(
                "SELECT b FROM y WHERE n LIKE 1",
                CostProfile { cpu_ms: 100.0, io_ms: 10.0, examined_rows: 1e4, sigma: 0.0, lock: None }
                    .reading(t1),
                "heavy",
            ),
        ];
        let mut dag = ApiDag::default();
        let api = dag
            .push(Api::named("a").query(Call::times(SpecId(0), 2)).query(Call::maybe(SpecId(1), 0.5)));
        Workload {
            tables: vec![TableDef::new("x", 100, 4), TableDef::new("y", 100, 4)],
            specs,
            dag,
            roots: vec![(api, TrafficPattern::steady(10.0))],
        }
    }

    #[test]
    fn summary_matches_hand_computation() {
        let w = workload();
        let s = WorkloadSummary::at(&w, 0);
        // cheap: 10 × 2 = 20/s; heavy: 10 × 0.5 = 5/s.
        assert!((s.total_qps - 25.0).abs() < 1e-9);
        // CPU: 20 × 2 ms + 5 × 100 ms = 0.04 + 0.5 = 0.54 core.
        assert!((s.total_cpu_load - 0.54).abs() < 1e-9);
        assert!((s.total_io_load - (20.0 * 0.001 + 5.0 * 0.01)).abs() < 1e-9);
        assert!((s.cpu_utilization(2.0) - 0.27).abs() < 1e-9);
    }

    #[test]
    fn top_cpu_ranks_the_heavy_template_first() {
        let w = workload();
        let s = WorkloadSummary::at(&w, 0);
        let top = s.top_cpu(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].label, "heavy");
        assert!(s.top_cpu(10).len() == 2);
    }

    #[test]
    fn qps_by_table_attributes_by_lock_footprint() {
        let w = workload();
        let s = WorkloadSummary::at(&w, 0);
        let by_table = s.qps_by_table(&w);
        assert!((by_table[0].1 - 20.0).abs() < 1e-9);
        assert!((by_table[1].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cores must be positive")]
    fn zero_cores_panics() {
        let w = workload();
        let _ = WorkloadSummary::at(&w, 0).cpu_utilization(0.0);
    }
}
