//! Seeded random samplers used across workload generation.
//!
//! Only the `rand` core crate is a dependency, so the distributions the
//! workload needs are implemented here: Poisson (Knuth's method with a
//! normal approximation for large rates), log-normal via Box–Muller, and a
//! Zipf sampler for hot-row selection.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Creates the deterministic RNG used throughout the workload layer.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard normal deviate via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `LogNormal(μ, σ)` where μ/σ are the parameters of the underlying
/// normal. Use [`lognormal_with_mean`] to parameterize by the target mean.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Samples a log-normal with the given *mean* and coefficient-of-variation
/// shape `sigma` (σ of the underlying normal). `mean(LogN(μ,σ)) = e^{μ+σ²/2}`
/// so `μ = ln(mean) − σ²/2`.
///
/// Query response-time distributions are heavy-tailed; log-normal service
/// demands are the standard modelling choice for OLTP cost profiles.
pub fn lognormal_with_mean(rng: &mut impl Rng, mean: f64, sigma: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let mu = mean.ln() - sigma * sigma / 2.0;
    lognormal(rng, mu, sigma)
}

/// Samples `Poisson(lambda)`.
///
/// Knuth's multiplication method for small rates; for `λ > 30` a rounded
/// normal approximation `N(λ, λ)` (clamped at zero) keeps this O(1) — the
/// error is far below the noise of the workloads generated here.
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = lambda + lambda.sqrt() * standard_normal(rng);
        return x.round().max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Samples an exponential inter-arrival time with the given rate (per
/// second), in seconds.
pub fn exponential(rng: &mut impl Rng, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// A Zipf sampler over `{0, …, n−1}` with exponent `s`, used to pick hot
/// rows: low indices are sampled most often.
///
/// Uses the rejection-inversion-free approach of precomputing the CDF,
/// which is fine for the table cardinalities the lock model uses (hot
/// ranges of at most a few thousand slots).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `s ≥ 0` (s = 0 is
    /// uniform).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Samples an index in `{0, …, n−1}`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_with_mean_hits_target_mean() {
        let mut rng = rng_from_seed(2);
        let n = 50_000;
        let target = 12.5;
        let sum: f64 = (0..n).map(|_| lognormal_with_mean(&mut rng, target, 0.8)).sum();
        let mean = sum / n as f64;
        assert!((mean - target).abs() / target < 0.05, "mean {mean}");
        assert_eq!(lognormal_with_mean(&mut rng, 0.0, 1.0), 0.0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut rng = rng_from_seed(3);
        let n = 50_000;
        let lambda = 3.5;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_mean_and_variance() {
        let mut rng = rng_from_seed(4);
        let n = 20_000;
        let lambda = 250.0;
        let xs: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() / lambda < 0.02, "mean {mean}");
        assert!((var - lambda).abs() / lambda < 0.1, "var {var}");
    }

    #[test]
    fn poisson_zero_or_negative_lambda_is_zero() {
        let mut rng = rng_from_seed(5);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = rng_from_seed(6);
        let n = 50_000;
        let rate = 4.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_indices() {
        let mut rng = rng_from_seed(7);
        let z = Zipf::new(100, 1.2);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // All samples are in range (would have panicked otherwise).
    }

    #[test]
    fn zipf_with_zero_exponent_is_roughly_uniform() {
        let mut rng = rng_from_seed(8);
        let z = Zipf::new(10, 0.0);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (lo, hi) = counts.iter().fold((usize::MAX, 0), |(l, h), &c| (l.min(c), h.max(c)));
        assert!((hi as f64 - lo as f64) / 10_000.0 < 0.1, "lo={lo} hi={hi}");
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zipf_empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
