//! Workload model for the PinSQL reproduction.
//!
//! §VI of the paper motivates template clustering with how modern back-ends
//! are built: business logic lives in microservices whose APIs call each
//! other in a DAG, so all SQL templates reachable from one user request
//! share one traffic trend. This crate models exactly that structure:
//!
//! * [`rng`] — seeded samplers built on `rand` (Poisson, log-normal via
//!   Box–Muller, Zipf) used everywhere randomness is needed;
//! * [`cost`] — per-query resource cost profiles (CPU, IO, examined rows)
//!   and lock footprints;
//! * [`spec`] — [`spec::TemplateSpec`]: a SQL template plus its cost
//!   profile and the table it touches;
//! * [`dag`] — the microservice API DAG and its expansion from a root
//!   invocation to the multiset of template executions it triggers;
//! * [`traffic`] — arrival-rate patterns (diurnal base + noise) and rate
//!   events (spikes / ramps / steps) used to inject business changes;
//! * [`tables`] — logical table definitions (row counts, hot ranges) that
//!   the simulator's lock managers key on.
//!
//! A [`Workload`] bundles specs, tables, the DAG, and root traffic; the
//! `pinsql-dbsim` crate consumes it to produce query logs and metrics.

pub mod cost;
pub mod dag;
pub mod rng;
pub mod spec;
pub mod summary;
pub mod tables;
pub mod traffic;

pub use cost::{CostProfile, LockFootprint, LockMode, QueryCost};
pub use dag::{Api, ApiDag, ApiId, SpecId};
pub use spec::TemplateSpec;
pub use summary::{TemplateDemand, WorkloadSummary};
pub use tables::{TableDef, TableId};
pub use traffic::{EventShape, RateEvent, TrafficPattern};

use serde::{Deserialize, Serialize};

/// A complete workload: the inputs the database simulator needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Logical tables; [`TableId`] indexes into this.
    pub tables: Vec<TableDef>,
    /// SQL template specifications; [`SpecId`] indexes into this.
    pub specs: Vec<TemplateSpec>,
    /// Microservice call graph over the specs.
    pub dag: ApiDag,
    /// Arrival traffic per root API: `(root, pattern)`.
    pub roots: Vec<(ApiId, TrafficPattern)>,
}

impl Workload {
    /// Expected executions of each spec per second at time `t`, combining
    /// every root's rate with the DAG's expected multiplicities. Useful for
    /// sanity checks and capacity planning in tests.
    pub fn expected_spec_rates(&self, t: i64) -> Vec<f64> {
        let mut rates = vec![0.0; self.specs.len()];
        for (root, pattern) in &self.roots {
            let rate = pattern.mean_rate(t);
            for (spec, mult) in self.dag.expected_multiplicities(*root) {
                rates[spec.0] += rate * mult;
            }
        }
        rates
    }
}
