//! Per-query cost profiles and lock footprints.
//!
//! Each SQL template carries a [`CostProfile`] describing the resources one
//! execution consumes. The simulator turns a profile into a concrete
//! [`QueryCost`] sample per execution; heavy tails come from log-normal
//! service demands. Lock behaviour is part of the cost profile because it
//! is a property of the *statement shape* (an `UPDATE … WHERE pk = ?` locks
//! one hot slot; an `ALTER TABLE` takes the metadata lock).

use crate::rng::lognormal_with_mean;
use crate::tables::TableId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a statement locks the table it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockMode {
    /// No locks beyond a shared metadata lock (plain MVCC reads).
    None,
    /// Shared row locks on hot slots (`SELECT … LOCK IN SHARE MODE`):
    /// conflicts with exclusive row locks.
    SharedRows,
    /// Exclusive row locks on hot slots (`UPDATE`, `DELETE`, `SELECT … FOR
    /// UPDATE`): conflicts with both shared and exclusive locks on the same
    /// slots.
    ExclusiveRows,
    /// Exclusive metadata lock on the whole table (DDL): blocks *every*
    /// other statement touching the table — the paper's category-3(i)
    /// anomaly where "the entire database is locked".
    ExclusiveTable,
}

impl LockMode {
    /// True when two modes conflict on the same slot/table.
    pub fn conflicts_with(&self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (None, _) | (_, None) => false,
            (SharedRows, SharedRows) => false,
            // Table-level exclusivity conflicts with everything.
            (ExclusiveTable, _) | (_, ExclusiveTable) => true,
            // Row-exclusive conflicts with shared and exclusive rows.
            _ => true,
        }
    }
}

/// The lock footprint of one statement execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LockFootprint {
    pub table: TableId,
    pub mode: LockMode,
    /// Number of hot slots one execution locks (row modes only).
    pub slots: u32,
}

/// Resource demands of one template execution (averages; samples vary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Mean CPU service demand per execution, in milliseconds.
    pub cpu_ms: f64,
    /// Mean IO service demand per execution, in milliseconds.
    pub io_ms: f64,
    /// Mean number of rows examined per execution.
    pub examined_rows: f64,
    /// Shape (σ of the underlying normal) of the log-normal demand
    /// distributions; 0 makes costs deterministic.
    pub sigma: f64,
    /// Lock footprint, if the statement locks anything.
    pub lock: Option<LockFootprint>,
}

impl CostProfile {
    /// A cheap indexed point read: sub-millisecond CPU, a handful of rows.
    pub fn point_read(table: TableId) -> Self {
        Self { cpu_ms: 0.15, io_ms: 0.1, examined_rows: 4.0, sigma: 0.4, lock: None }
            .reading(table)
    }

    /// A moderate range read.
    pub fn range_read(table: TableId, rows: f64) -> Self {
        Self {
            cpu_ms: 0.4 + rows / 2000.0,
            io_ms: 0.3 + rows / 5000.0,
            examined_rows: rows,
            sigma: 0.5,
            lock: None,
        }
        .reading(table)
    }

    /// An indexed single-row write taking one exclusive hot slot.
    pub fn point_write(table: TableId) -> Self {
        Self {
            cpu_ms: 0.3,
            io_ms: 0.4,
            examined_rows: 3.0,
            sigma: 0.4,
            lock: Some(LockFootprint { table, mode: LockMode::ExclusiveRows, slots: 1 }),
        }
    }

    /// A poorly written statement: scans `scanned` rows (missing index),
    /// burning CPU and IO proportional to the scan — the paper's category-2
    /// R-SQL.
    pub fn poor_scan(table: TableId, scanned: f64) -> Self {
        Self {
            cpu_ms: 1.0 + scanned / 400.0,
            io_ms: 0.5 + scanned / 1500.0,
            examined_rows: scanned,
            sigma: 0.35,
            lock: None,
        }
        .reading(table)
    }

    /// A batch write locking many hot slots for its whole duration — the
    /// paper's category-3(ii) row-lock R-SQL.
    pub fn batch_write(table: TableId, slots: u32, cpu_ms: f64) -> Self {
        Self {
            cpu_ms,
            io_ms: cpu_ms * 0.6,
            examined_rows: slots as f64 * 50.0,
            sigma: 0.3,
            lock: Some(LockFootprint { table, mode: LockMode::ExclusiveRows, slots }),
        }
    }

    /// DDL taking the table's exclusive metadata lock for `cpu_ms` of work —
    /// the category-3(i) MDL R-SQL.
    pub fn ddl(table: TableId, cpu_ms: f64) -> Self {
        Self {
            cpu_ms,
            io_ms: cpu_ms * 0.2,
            examined_rows: 0.0,
            sigma: 0.1,
            lock: Some(LockFootprint { table, mode: LockMode::ExclusiveTable, slots: 0 }),
        }
    }

    /// Marks the profile as reading `table` (shared-MDL only). Readers must
    /// still declare their table so DDL can block them.
    pub fn reading(mut self, table: TableId) -> Self {
        if self.lock.is_none() {
            self.lock = Some(LockFootprint { table, mode: LockMode::None, slots: 0 });
        }
        self
    }

    /// Converts plain reads into locking reads (shared row locks on
    /// `slots` hot slots), modelling `LOCK IN SHARE MODE` victims.
    pub fn with_shared_row_locks(mut self, slots: u32) -> Self {
        if let Some(lock) = &mut self.lock {
            if lock.mode == LockMode::None {
                lock.mode = LockMode::SharedRows;
                lock.slots = slots;
            }
        }
        self
    }

    /// Samples the concrete cost of one execution.
    pub fn sample(&self, rng: &mut impl Rng) -> QueryCost {
        let (cpu_ms, io_ms, rows) = if self.sigma <= 0.0 {
            (self.cpu_ms, self.io_ms, self.examined_rows)
        } else {
            (
                lognormal_with_mean(rng, self.cpu_ms, self.sigma),
                lognormal_with_mean(rng, self.io_ms, self.sigma),
                lognormal_with_mean(rng, self.examined_rows, self.sigma),
            )
        };
        QueryCost { cpu_ms, io_ms, examined_rows: rows.round().max(0.0) as u64 }
    }
}

/// Concrete resource cost of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryCost {
    pub cpu_ms: f64,
    pub io_ms: f64,
    pub examined_rows: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    const T: TableId = TableId(0);

    #[test]
    fn lock_conflict_matrix() {
        use LockMode::*;
        assert!(!None.conflicts_with(None));
        assert!(!None.conflicts_with(ExclusiveRows));
        assert!(!SharedRows.conflicts_with(SharedRows));
        assert!(SharedRows.conflicts_with(ExclusiveRows));
        assert!(ExclusiveRows.conflicts_with(ExclusiveRows));
        assert!(ExclusiveTable.conflicts_with(SharedRows));
        assert!(ExclusiveTable.conflicts_with(ExclusiveTable));
        // `None` means "no row locks": at the *row* level DDL does not
        // conflict with plain readers. DDL still blocks them through the
        // metadata-lock manager, which every statement passes (readers take
        // shared MDL, DDL takes exclusive MDL) — see dbsim::locks.
        assert!(!ExclusiveTable.conflicts_with(None));
    }

    #[test]
    fn profiles_carry_expected_lock_modes() {
        assert_eq!(CostProfile::point_read(T).lock.unwrap().mode, LockMode::None);
        assert_eq!(CostProfile::point_write(T).lock.unwrap().mode, LockMode::ExclusiveRows);
        assert_eq!(CostProfile::ddl(T, 100.0).lock.unwrap().mode, LockMode::ExclusiveTable);
        let locked_read = CostProfile::point_read(T).with_shared_row_locks(2);
        assert_eq!(locked_read.lock.unwrap().mode, LockMode::SharedRows);
        assert_eq!(locked_read.lock.unwrap().slots, 2);
    }

    #[test]
    fn with_shared_row_locks_does_not_demote_writes() {
        let w = CostProfile::point_write(T).with_shared_row_locks(5);
        assert_eq!(w.lock.unwrap().mode, LockMode::ExclusiveRows);
        assert_eq!(w.lock.unwrap().slots, 1);
    }

    #[test]
    fn sample_means_match_profile() {
        let mut rng = rng_from_seed(11);
        let p = CostProfile::poor_scan(T, 50_000.0);
        let n = 20_000;
        let mut cpu = 0.0;
        let mut rows = 0.0;
        for _ in 0..n {
            let c = p.sample(&mut rng);
            cpu += c.cpu_ms;
            rows += c.examined_rows as f64;
        }
        assert!((cpu / n as f64 - p.cpu_ms).abs() / p.cpu_ms < 0.05);
        assert!((rows / n as f64 - p.examined_rows).abs() / p.examined_rows < 0.05);
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = rng_from_seed(12);
        let p = CostProfile { cpu_ms: 5.0, io_ms: 1.0, examined_rows: 10.0, sigma: 0.0, lock: None };
        let a = p.sample(&mut rng);
        let b = p.sample(&mut rng);
        assert_eq!(a, b);
        assert_eq!(a.cpu_ms, 5.0);
        assert_eq!(a.examined_rows, 10);
    }
}
