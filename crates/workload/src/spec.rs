//! Template specifications: a SQL template plus its execution profile.

use crate::cost::CostProfile;
use pinsql_sqlkit::SqlTemplate;
use serde::{Deserialize, Serialize};

/// A SQL template as the workload generator knows it: the (already
/// normalized) statement, its cost profile, and a label naming the business
/// intent (used in reports and ground-truth bookkeeping).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemplateSpec {
    /// The parsed template (id, canonical text, kind, tables).
    pub template: SqlTemplate,
    /// Resource/lock profile of one execution.
    pub cost: CostProfile,
    /// Human-readable label, e.g. `"orders.lookup_by_id"`.
    pub label: String,
}

impl TemplateSpec {
    /// Builds a spec from raw SQL text. The text is normalized and
    /// fingerprinted via `pinsql-sqlkit`, so two specs created from
    /// structurally identical SQL share a [`pinsql_sqlkit::SqlId`].
    pub fn new(sql: &str, cost: CostProfile, label: impl Into<String>) -> Self {
        Self { template: SqlTemplate::of(sql), cost, label: label.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostProfile;
    use crate::tables::TableId;

    #[test]
    fn spec_carries_template_identity() {
        let spec = TemplateSpec::new(
            "SELECT * FROM orders WHERE id = 42",
            CostProfile::point_read(TableId(0)),
            "orders.lookup",
        );
        assert_eq!(spec.template.text, "SELECT * FROM orders WHERE id = ?");
        assert_eq!(spec.template.tables, vec!["orders"]);
        assert_eq!(spec.label, "orders.lookup");
    }

    #[test]
    fn structurally_equal_specs_share_sql_id() {
        let c = CostProfile::point_read(TableId(0));
        let a = TemplateSpec::new("SELECT * FROM t WHERE x = 1", c.clone(), "a");
        let b = TemplateSpec::new("SELECT * FROM t WHERE x = 999", c, "b");
        assert_eq!(a.template.id, b.template.id);
    }
}
