//! Top-SQL baselines (§VIII-A competitors).
//!
//! Every cloud vendor's diagnosing product exposes "Top SQL" views: sort
//! the templates by an aggregate metric over the anomaly period and let the
//! DBA read from the top. The paper evaluates four variants:
//!
//! * **Top-EN** — by `#execution` (sudden business change indicator);
//! * **Top-RT** — by total response time (equivalent to ranking by average
//!   active session, the strongest single metric);
//! * **Top-ER** — by `#examined_rows` (CPU-anomaly indicator);
//! * **Top-All** — the per-case best of the three (a DBA paging through
//!   all the sorted views).
//!
//! All of them rank the *same list* for R-SQLs and H-SQLs — which is
//! exactly why they fail on R-SQLs hiding behind victims.

use pinsql_collector::CaseData;
use pinsql_detect::AnomalyWindow;
use serde::{Deserialize, Serialize};

/// The metric a Top-SQL baseline sorts by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopMetric {
    /// Top-EN.
    ExecutionCount,
    /// Top-RT.
    TotalResponseTime,
    /// Top-ER.
    ExaminedRows,
}

impl TopMetric {
    /// All three single-metric baselines.
    pub const ALL: [TopMetric; 3] =
        [TopMetric::ExecutionCount, TopMetric::TotalResponseTime, TopMetric::ExaminedRows];

    /// The paper's display name.
    pub fn label(&self) -> &'static str {
        match self {
            TopMetric::ExecutionCount => "Top-EN",
            TopMetric::TotalResponseTime => "Top-RT",
            TopMetric::ExaminedRows => "Top-ER",
        }
    }
}

/// Ranks the case's templates by the metric summed over the anomaly
/// period, descending. Returns `(template index, value)` pairs.
pub fn rank_top(case: &CaseData, window: &AnomalyWindow, metric: TopMetric) -> Vec<(usize, f64)> {
    let lo = (window.anomaly_start - window.ts()).max(0) as usize;
    let hi = ((window.anomaly_end - window.ts()).max(0) as usize).min(case.n_seconds());
    let hi = hi.max(lo);
    let mut ranked: Vec<(usize, f64)> = case
        .templates
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let series = match metric {
                TopMetric::ExecutionCount => &t.series.execution_count,
                TopMetric::TotalResponseTime => &t.series.total_rt_ms,
                TopMetric::ExaminedRows => &t.series.examined_rows,
            };
            let end = hi.min(series.len());
            let start = lo.min(end);
            (i, series[start..end].iter().sum::<f64>())
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinsql_collector::aggregate_case;
    use pinsql_dbsim::probe::ProbeLog;
    use pinsql_dbsim::{InstanceMetrics, QueryRecord};
    use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};

    fn case() -> (CaseData, AnomalyWindow) {
        let c = CostProfile::point_read(TableId(0));
        let specs = vec![
            TemplateSpec::new("SELECT * FROM a WHERE x = 1", c.clone(), "many_fast"),
            TemplateSpec::new("SELECT * FROM b WHERE x = 1", c.clone(), "few_slow"),
            TemplateSpec::new("SELECT * FROM c WHERE x = 1", c, "scanner"),
        ];
        let mut log = Vec::new();
        for t in 0..60i64 {
            // many_fast: 50/s, 5 ms, 2 rows
            for j in 0..50 {
                log.push(QueryRecord {
                    spec: SpecId(0),
                    start_ms: t as f64 * 1000.0 + j as f64 * 19.0,
                    response_ms: 5.0,
                    examined_rows: 2,
                });
            }
            // few_slow inside the anomaly window only: 2/s, 2 s each
            if (30..50).contains(&t) {
                for j in 0..2 {
                    log.push(QueryRecord {
                        spec: SpecId(1),
                        start_ms: t as f64 * 1000.0 + j as f64 * 400.0,
                        response_ms: 2000.0,
                        examined_rows: 10,
                    });
                }
                // scanner: 1/s, modest rt, many rows
                log.push(QueryRecord {
                    spec: SpecId(2),
                    start_ms: t as f64 * 1000.0 + 100.0,
                    response_ms: 80.0,
                    examined_rows: 100_000,
                });
            }
        }
        let n = 60;
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: vec![1.0; n],
            cpu_usage: vec![0.3; n],
            iops_usage: vec![0.1; n],
            row_lock_waits: vec![0.0; n],
            mdl_waits: vec![0.0; n],
            qps: vec![0.0; n],
            probes: ProbeLog::default(),
        };
        let case = aggregate_case(&log, &specs, &metrics, 0, 60);
        let window = AnomalyWindow { anomaly_start: 30, anomaly_end: 50, delta_s: 30 };
        (case, window)
    }

    fn idx(case: &CaseData, spec: usize) -> usize {
        case.template_index(case.catalog.id_of_spec(SpecId(spec))).unwrap()
    }

    #[test]
    fn top_en_picks_the_chattiest() {
        let (case, w) = case();
        let r = rank_top(&case, &w, TopMetric::ExecutionCount);
        assert_eq!(r[0].0, idx(&case, 0));
        assert_eq!(r[0].1, 50.0 * 20.0);
    }

    #[test]
    fn top_rt_picks_the_total_time_hog() {
        let (case, w) = case();
        let r = rank_top(&case, &w, TopMetric::TotalResponseTime);
        // few_slow: 2×2000 ms × 20 s = 80 000 > many_fast 50×5×20 = 5 000.
        assert_eq!(r[0].0, idx(&case, 1));
    }

    #[test]
    fn top_er_picks_the_scanner() {
        let (case, w) = case();
        let r = rank_top(&case, &w, TopMetric::ExaminedRows);
        assert_eq!(r[0].0, idx(&case, 2));
    }

    #[test]
    fn ranking_covers_all_templates() {
        let (case, w) = case();
        for m in TopMetric::ALL {
            let r = rank_top(&case, &w, m);
            assert_eq!(r.len(), 3);
            assert!(r.windows(2).all(|p| p[0].1 >= p[1].1), "descending for {m:?}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(TopMetric::ExecutionCount.label(), "Top-EN");
        assert_eq!(TopMetric::TotalResponseTime.label(), "Top-RT");
        assert_eq!(TopMetric::ExaminedRows.label(), "Top-ER");
    }
}
