//! Root integration-suite crate (see tests/ and examples/).
