#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from the repo root.
#
# Usage: scripts/ci.sh [target]
#
# Targets (each is a fast loop for one layer; no target runs the full
# gate, which includes every smoke below plus `cargo test` and clippy):
#   robustness_smoke  end-to-end chaos run: perturbation + diagnosis
#   fleet_smoke       4-instance multiplexed ingest + diagnosis round-trip
#   scaling_smoke     shards 1/2/4 close bit-identical cases
#   obs_smoke         chrome-trace export + zero-cost disabled observer
#   kernel_smoke      fast kernels vs scalar reference + dense-store
#                     throughput-ratio regression gate
#   snapshot_smoke    checkpoint/reshard suites + snapshot-size /
#                     restore-latency sanity gate
#   daemon_smoke      resident daemon: control-wire hardening, daemon
#                     equivalence matrix, push-pause / restart gate
#   case_cut_smoke    incremental window cut: running-moment property
#                     suite + cut-assembly speedup regression gate
#   transport_smoke   cross-process ingest: PEVT wire hardening,
#                     loopback transport equivalence + backpressure
#                     faults, throughput/latency sanity gate
set -euo pipefail
cd "$(dirname "$0")/.."

usage() {
  sed -n '2,23p' "$0" | sed 's/^# \{0,1\}//' >&2
}

# End-to-end chaos: a tiny run that exercises perturbation + diagnosis
# together.
robustness_smoke() {
  cargo test -q -p pinsql-eval robustness_smoke
}

# Fleet engine: a 4-instance multiplexed ingest + diagnosis round-trip
# through the online path.
fleet_smoke() {
  cargo test -q -p pinsql-engine fleet_smoke
}

# Sharded ingestion: shards 1/2/4 over the same small fleet must close
# bit-identical cases and diagnoses.
scaling_smoke() {
  cargo test -q -p pinsql-engine scaling_smoke
}

# Observability: a recorded golden case must export a valid chrome-trace
# document, and the disabled observer must add no measurable cost to the
# ingest hot path.
obs_smoke() {
  cargo test -q --test obs_smoke
}

# Kernels: the fast kernels must stay bit-identical to the scalar
# reference (property suite), and the dense store's ingest advantage over
# the hashed reference store must not regress >20% against the committed
# summary. The gate compares the machine-neutral dense/hashed throughput
# ratio, so it holds on slow CI hosts too.
kernel_smoke() {
  cargo test -q --test kernel_props
  cargo run --release -q -p pinsql-bench --bin ingest_rate -- --check BENCH_ingest_loop.json
}

# Checkpoint/restore + live resharding: engine-crate unit tests, the
# wire-hardening and property suites, the reshard-equivalence matrix and
# crash recovery, then the bench-bin gate that keeps snapshot
# bytes/instance and restore latency inside sane bounds.
snapshot_smoke() {
  cargo test -q -p pinsql-engine snapshot
  cargo test -q --test snapshot_wire
  cargo test -q --test snapshot_props
  cargo test -q --test reshard_equivalence
  cargo test -q --test crash_recovery
  cargo run --release -q -p pinsql-bench --bin reshard -- --gate
}

# Resident fleet daemon: control/daemon unit tests, PCTL wire hardening,
# the daemon-equivalence matrix (mid-stream config push + graceful
# restart, byte-identical to a cold start), then the bench-bin gate that
# keeps the config-push pause and restart recovery inside sane bounds.
daemon_smoke() {
  cargo test -q -p pinsql-engine control
  cargo test -q -p pinsql-engine daemon
  cargo test -q --test control_wire
  cargo test -q --test daemon_equivalence
  cargo run --release -q -p pinsql-bench --bin daemon -- --gate
}

# Incremental window cut: the running-moment property suite (cut rows
# bit-identical to the reference derivation under random/perturbed/
# evicting/restored streams) and the bench-bin gate that keeps the
# machine-neutral reference-over-incremental cut-assembly speedup from
# regressing >20% against the committed summary.
case_cut_smoke() {
  cargo test -q --test cut_props
  cargo run --release -q -p pinsql-bench --bin case_cut -- --gate BENCH_case_cut.json
}

# Cross-process ingest transport: engine wire/transport unit tests, the
# PEVT adversarial suite with its committed golden frame, the loopback
# transport-equivalence matrix (byte-identical to run_full, mid-stream
# reconnect included), the backpressure/fault-injection soak, then the
# bench-bin gate that keeps the credit/memory bounds and the p99
# frame-latency ceiling honest.
transport_smoke() {
  cargo test -q -p pinsql-engine transport
  cargo test -q -p pinsql-engine wire
  cargo test -q --test event_wire
  cargo test -q --test transport_equivalence
  cargo test -q --test backpressure
  cargo run --release -q -p pinsql-bench --bin transport -- --gate
}

target="${1:-all}"

case "$target" in
  robustness_smoke|fleet_smoke|scaling_smoke|obs_smoke|kernel_smoke|snapshot_smoke|daemon_smoke|case_cut_smoke|transport_smoke)
    cargo build --release
    "$target"
    exit 0
    ;;
  all) ;;
  -h|--help|help)
    usage
    exit 0
    ;;
  *)
    echo "unknown target: $target" >&2
    echo >&2
    usage
    exit 2
    ;;
esac

cargo build --release
# Fast-fail smokes first, cheapest layers before the heavy matrices.
robustness_smoke
fleet_smoke
scaling_smoke
obs_smoke
kernel_smoke
snapshot_smoke
daemon_smoke
case_cut_smoke
transport_smoke
cargo test -q
cargo clippy --workspace -- -D warnings
