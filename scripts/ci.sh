#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from the repo root.
#
# Usage: scripts/ci.sh [target]
#   (no target)      the full gate, snapshot_smoke included
#   snapshot_smoke   only the checkpoint/reshard suites plus the
#                    snapshot-size / restore-latency sanity gate — the
#                    fast loop when touching the snapshot or fleet layer
set -euo pipefail
cd "$(dirname "$0")/.."

target="${1:-all}"

# Checkpoint/restore + live resharding: engine-crate unit tests, the
# wire-hardening and property suites, the reshard-equivalence matrix and
# crash recovery, then the bench-bin gate that keeps snapshot
# bytes/instance and restore latency inside sane bounds.
snapshot_smoke() {
  cargo test -q -p pinsql-engine snapshot
  cargo test -q --test snapshot_wire
  cargo test -q --test snapshot_props
  cargo test -q --test reshard_equivalence
  cargo test -q --test crash_recovery
  cargo run --release -q -p pinsql-bench --bin reshard -- --gate
}

case "$target" in
  snapshot_smoke)
    cargo build --release
    snapshot_smoke
    exit 0
    ;;
  all) ;;
  *)
    echo "unknown target: $target (expected nothing or snapshot_smoke)" >&2
    exit 2
    ;;
esac

cargo build --release
# Fast fail on the robustness sweep before the full suite: a tiny
# end-to-end chaos run that exercises perturbation + diagnosis together.
cargo test -q -p pinsql-eval robustness_smoke
# Fast fail on the fleet engine: a 4-instance multiplexed ingest +
# diagnosis round-trip through the online path.
cargo test -q -p pinsql-engine fleet_smoke
# Fast fail on sharded ingestion: shards 1/2/4 over the same small fleet
# must close bit-identical cases and diagnoses.
cargo test -q -p pinsql-engine scaling_smoke
# Fast fail on observability: a recorded golden case must export a valid
# chrome-trace document, and the disabled observer must add no measurable
# cost to the ingest hot path.
cargo test -q --test obs_smoke
# kernel_smoke: the fast kernels must stay bit-identical to the scalar
# reference (property suite), and the dense store's ingest advantage over
# the hashed reference store must not regress >20% against the committed
# summary. The gate compares the machine-neutral dense/hashed throughput
# ratio, so it holds on slow CI hosts too.
cargo test -q --test kernel_props
cargo run --release -q -p pinsql-bench --bin ingest_rate -- --check BENCH_ingest_loop.json
# Checkpoint/restore + live resharding layer: snapshots must round-trip
# exactly and a mid-stream reshard must be invisible in the output.
snapshot_smoke
cargo test -q
cargo clippy --workspace -- -D warnings
