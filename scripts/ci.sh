#!/usr/bin/env bash
# Full local gate: release build, the whole test suite, and clippy with
# warnings promoted to errors. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# Fast fail on the robustness sweep before the full suite: a tiny
# end-to-end chaos run that exercises perturbation + diagnosis together.
cargo test -q -p pinsql-eval robustness_smoke
# Fast fail on the fleet engine: a 4-instance multiplexed ingest +
# diagnosis round-trip through the online path.
cargo test -q -p pinsql-engine fleet_smoke
# Fast fail on sharded ingestion: shards 1/2/4 over the same small fleet
# must close bit-identical cases and diagnoses.
cargo test -q -p pinsql-engine scaling_smoke
# Fast fail on observability: a recorded golden case must export a valid
# chrome-trace document, and the disabled observer must add no measurable
# cost to the ingest hot path.
cargo test -q --test obs_smoke
# kernel_smoke: the fast kernels must stay bit-identical to the scalar
# reference (property suite), and the dense store's ingest advantage over
# the hashed reference store must not regress >20% against the committed
# summary. The gate compares the machine-neutral dense/hashed throughput
# ratio, so it holds on slow CI hosts too.
cargo test -q --test kernel_props
cargo run --release -q -p pinsql-bench --bin ingest_rate -- --check BENCH_ingest_loop.json
cargo test -q
cargo clippy --workspace -- -D warnings
