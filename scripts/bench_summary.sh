#!/usr/bin/env bash
# Re-measure a benchmark and distill it into its committed summary. Raw
# sweeps stay under results/ (gitignored, machine-local); the committed
# BENCH_*.json files are the curated artifacts the CI gates and
# EXPERIMENTS.md reference.
#
# Usage:
#   scripts/bench_summary.sh [ingest] [templates] [qps] [dur_s] [reps] [retention_s]
#   scripts/bench_summary.sh case_cut [qps] [reps]
#   scripts/bench_summary.sh transport [batch_csv] [reps]
#
# ingest (default) — fleet-scale ingest rate -> BENCH_ingest_loop.json.
#   Defaults match the committed workload: 3000 templates, 25 qps,
#   1800 s, best of 15, retention 420 s.
# case_cut — window-cut assembly sweep -> BENCH_case_cut.json.
#   Defaults: 25 qps, best of 7 assemblies per sweep point.
# transport — socketed ingest throughput + per-frame latency vs PEVT
#   batch size -> BENCH_transport.json. Defaults: batches
#   16,64,256,1024, best of 3 loopback runs per point.
#
# Hand-pinned sections of the committed files are preserved: ingest's
# baseline/ and smoke/ predate re-measurement or are the CI gate's
# deliberately pinned reference; case_cut's smoke/ speedup is likewise
# pinned below the measured value to absorb cross-host variance. Delete
# those keys by hand if you mean to retire them.
set -euo pipefail
cd "$(dirname "$0")/.."

bench="ingest"
case "${1:-}" in
  ingest|case_cut|transport) bench="$1"; shift ;;
esac

if [ "$bench" = "transport" ]; then
  BATCHES="${1:-16,64,256,1024}"
  REPS="${2:-3}"

  cargo run --release -p pinsql-bench --bin transport -- "$BATCHES" 6 12000 "$REPS"

  python3 - <<'EOF'
import json

with open("results/transport.json") as f:
    fresh = json.load(f)

try:
    with open("BENCH_transport.json") as f:
        committed = json.load(f)
except FileNotFoundError:
    committed = {}

out = dict(committed)
out["bench"] = "transport"
out["git_rev"] = fresh["git_rev"]
out["workload"] = {
    "scenarios": 4,
    "businesses": fresh["businesses"],
    "window_s": fresh["window_s"],
    "delta_s": fresh["delta_s"],
    "advance_every_s": fresh["advance_every_s"],
    "queue_capacity": fresh["queue_capacity"],
    "shards": 2,
    "kernel": "fast",
}
out["events"] = fresh["cells"][0]["events_total"]
out["entries"] = [
    {
        "batch_events": c["batch_events"],
        "frames": c["frames"],
        "wire_bytes": c["wire_bytes"],
        "events_per_sec": round(c["events_per_sec"]),
        "mean_frame_us": round(c["mean_frame_us"], 1),
        "p99_frame_us": round(c["p99_frame_us"], 1),
        "credit_stalls": c["credit_stalls"],
    }
    for c in fresh["cells"]
]

# The headline tracks the default (256-event) batch; the smoke gate's
# p99 sanity ceiling stays as committed (re-pin it by hand, well above
# the measured tail).
head = next((e for e in out["entries"] if e["batch_events"] == 256), out["entries"][-1])
out["headline"] = {
    "batch_events": head["batch_events"],
    "events_per_sec": head["events_per_sec"],
    "p99_frame_us": head["p99_frame_us"],
}

with open("BENCH_transport.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print("BENCH_transport.json updated:")
for e in out["entries"]:
    print(
        f"  batch {e['batch_events']:>5}: {e['events_per_sec']:>9,} events/s, "
        f"p99 {e['p99_frame_us']:.1f}us, {e['credit_stalls']} stalls"
    )
EOF
  exit 0
fi

if [ "$bench" = "case_cut" ]; then
  QPS="${1:-25}"
  REPS="${2:-7}"

  cargo run --release -p pinsql-bench --bin case_cut -- "$QPS" "$REPS"

  python3 - <<'EOF'
import json

with open("results/case_cut.json") as f:
    fresh = json.load(f)

try:
    with open("BENCH_case_cut.json") as f:
        committed = json.load(f)
except FileNotFoundError:
    committed = {}

out = dict(committed)
for key in ("bench", "git_rev", "workload", "entries"):
    out[key] = fresh[key]

# The headline tracks the largest sweep point; the smoke gate reference
# stays as committed (re-pin it by hand, below the measured speedup).
head = max(fresh["entries"], key=lambda e: (e["templates"], e["window_s"]))
out["headline"] = {
    "templates": head["templates"],
    "window_s": head["window_s"],
    "speedup": head["speedup"],
}
if "smoke" in out:
    out["smoke"]["measured_speedup"] = head["speedup"]

with open("BENCH_case_cut.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print("BENCH_case_cut.json updated:")
for e in fresh["entries"]:
    print(
        f"  {e['templates']:>5} templates x {e['window_s']:>3}s: "
        f"{e['reference_cut_ms']:.3f}ms -> {e['incremental_cut_ms']:.3f}ms "
        f"({e['speedup']:.1f}x)"
    )
EOF
  exit 0
fi

TEMPLATES="${1:-3000}"
QPS="${2:-25}"
DUR_S="${3:-1800}"
REPS="${4:-15}"
RETENTION_S="${5:-420}"

cargo run --release -p pinsql-bench --bin ingest_rate -- \
  "$TEMPLATES" "$QPS" "$DUR_S" "$REPS" "$RETENTION_S"

python3 - <<'EOF'
import json

with open("results/ingest_rate.json") as f:
    fresh = json.load(f)

try:
    with open("BENCH_ingest_loop.json") as f:
        committed = json.load(f)
except FileNotFoundError:
    committed = {}

out = dict(committed)
for key in ("bench", "git_rev", "workload", "events", "entries"):
    out[key] = fresh[key]

rate = {(e["cell_store"], e["kernel_kind"]): e["events_per_sec"] for e in fresh["entries"]}
baseline = out.get("baseline", {}).get("dense_events_per_sec")
if baseline:
    out["speedup_dense_fast_vs_baseline"] = round(rate[("dense", "fast")] / baseline, 2)

with open("BENCH_ingest_loop.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print("BENCH_ingest_loop.json updated:")
for (store, kernel), eps in sorted(rate.items()):
    print(f"  {store}/{kernel}: {eps:,.0f} events/s")
EOF
