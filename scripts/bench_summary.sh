#!/usr/bin/env bash
# Re-measure the fleet-scale ingest rate and distill it into the committed
# summary. Raw sweeps stay under results/ (gitignored, machine-local);
# BENCH_ingest_loop.json is the curated artifact the CI kernel-smoke gate
# and EXPERIMENTS.md reference.
#
# Usage: scripts/bench_summary.sh [templates] [qps] [dur_s] [reps] [retention_s]
# Defaults match the committed workload: 3000 templates, 25 qps, 1800 s,
# best of 15, retention 420 s (steady state: retention < duration).
#
# The baseline/ and smoke/ sections of the committed file are preserved:
# the baseline predates the kernel layer and cannot be re-measured from
# this tree, and the smoke ratio should only be re-pinned deliberately
# (it is the CI gate's reference). Delete those keys by hand if you mean
# to retire them.
set -euo pipefail
cd "$(dirname "$0")/.."

TEMPLATES="${1:-3000}"
QPS="${2:-25}"
DUR_S="${3:-1800}"
REPS="${4:-15}"
RETENTION_S="${5:-420}"

cargo run --release -p pinsql-bench --bin ingest_rate -- \
  "$TEMPLATES" "$QPS" "$DUR_S" "$REPS" "$RETENTION_S"

python3 - <<'EOF'
import json

with open("results/ingest_rate.json") as f:
    fresh = json.load(f)

try:
    with open("BENCH_ingest_loop.json") as f:
        committed = json.load(f)
except FileNotFoundError:
    committed = {}

out = dict(committed)
for key in ("bench", "git_rev", "workload", "events", "entries"):
    out[key] = fresh[key]

rate = {(e["cell_store"], e["kernel_kind"]): e["events_per_sec"] for e in fresh["entries"]}
baseline = out.get("baseline", {}).get("dense_events_per_sec")
if baseline:
    out["speedup_dense_fast_vs_baseline"] = round(rate[("dense", "fast")] / baseline, 2)

with open("BENCH_ingest_loop.json", "w") as f:
    json.dump(out, f, indent=2)
    f.write("\n")

print("BENCH_ingest_loop.json updated:")
for (store, kernel), eps in sorted(rate.items()):
    print(f"  {store}/{kernel}: {eps:,.0f} events/s")
EOF
