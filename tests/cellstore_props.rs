//! Property equivalence of the two cell-store representations.
//!
//! The incremental aggregator's dense-slab store is the hot-path default;
//! the hashed store is the reference implementation. This suite drives
//! both with identical event streams — random, out-of-order, and
//! chaos-perturbed real telemetry — and requires bit-identical `CaseData`
//! snapshots, `executions` reads, and ingest counters, plus scalar/chunked
//! agreement on the same streams.

use pinsql_collector::{CaseData, CellStoreKind, IncrementalAggregator, IncrementalConfig};
use pinsql_dbsim::{MetricsSample, QueryRecord, TelemetryEvent};
use pinsql_scenario::{
    generate_base, inject, simulate_telemetry, AnomalyKind, PerturbConfig, ScenarioConfig,
};
use pinsql_workload::{CostProfile, SpecId, TableId, TemplateSpec};
use proptest::prelude::*;

fn specs(n: usize) -> Vec<TemplateSpec> {
    (0..n)
        .map(|i| {
            TemplateSpec::new(
                &format!("SELECT c{i} FROM t{i} WHERE id = 1"),
                CostProfile::point_read(TableId(0)),
                format!("s{i}"),
            )
        })
        .collect()
}

fn assert_case_eq(a: &CaseData, b: &CaseData) {
    assert_eq!(a.ts, b.ts);
    assert_eq!(a.te, b.te);
    assert_eq!(a.records, b.records);
    assert_eq!(a.templates.len(), b.templates.len());
    for (x, y) in a.templates.iter().zip(&b.templates) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.record_idx, y.record_idx);
        assert_eq!(x.series.start, y.series.start);
        assert_eq!(x.series.execution_count, y.series.execution_count);
        assert_eq!(x.series.total_rt_ms, y.series.total_rt_ms);
        assert_eq!(x.series.examined_rows, y.series.examined_rows);
    }
}

fn assert_aggs_agree(
    dense: &mut IncrementalAggregator,
    hashed: &mut IncrementalAggregator,
    ts: i64,
    te: i64,
) {
    let sd = dense.stats();
    let sh = hashed.stats();
    assert_eq!(sd.events, sh.events);
    assert_eq!(sd.queries, sh.queries);
    assert_eq!(sd.malformed, sh.malformed);
    assert_eq!(sd.late, sh.late);
    assert_eq!(dense.watermark(), hashed.watermark());
    assert_case_eq(&dense.snapshot(ts, te), &hashed.snapshot(ts, te));
    for s in ts..te {
        for spec_idx in 0..dense.catalog().n_slots() {
            let id = dense.catalog().id_of_slot(spec_idx as u32);
            assert_eq!(dense.executions(id, s), hashed.executions(id, s), "id {id:?} s={s}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random event streams — arrivals in any order (including seconds
    /// before the ring start), corrupted records, interleaved ticks and
    /// metric samples — fold identically through both stores, via both the
    /// scalar and the chunked entry points.
    #[test]
    fn stores_agree_on_random_streams(
        raw in prop::collection::vec(
            // (spec, arrival second, sub-second ms, response, rows, corrupt)
            (0usize..6, -3i64..90, 0.0f64..1000.0, 0.1f64..500.0, 0u64..100, 0u8..20),
            1..250,
        ),
        tick_every in 1usize..40,
    ) {
        let specs = specs(6);
        let mut events: Vec<TelemetryEvent> = Vec::new();
        for (i, &(spec, sec, sub_ms, rt, rows, corrupt)) in raw.iter().enumerate() {
            // A small fraction of records carry non-finite fields and must
            // be dropped identically by every path.
            let (start_ms, response_ms) = match corrupt {
                0 => (f64::NAN, rt),
                1 => (sec as f64 * 1000.0 + sub_ms, f64::INFINITY),
                _ => (sec as f64 * 1000.0 + sub_ms, rt),
            };
            events.push(TelemetryEvent::Query(QueryRecord {
                spec: SpecId(spec),
                start_ms,
                response_ms,
                examined_rows: rows,
            }));
            if i % tick_every == tick_every - 1 {
                // Ticks from the maximum arrival so far keep the watermark
                // monotone while arrivals stay out of order.
                let hi = raw[..=i].iter().map(|r| r.1).max().unwrap_or(0);
                events.push(TelemetryEvent::Metrics(Box::new(MetricsSample {
                    second: hi.max(0),
                    active_session: 1.0,
                    ..Default::default()
                })));
            }
        }

        let mk = |kind: CellStoreKind| {
            IncrementalAggregator::new(&specs, IncrementalConfig::default().with_cell_store(kind))
        };
        let mut dense = mk(CellStoreKind::Dense);
        let mut hashed = mk(CellStoreKind::Hashed);
        for ev in events.clone() {
            dense.ingest(ev.clone());
            hashed.ingest(ev);
        }
        assert_aggs_agree(&mut dense, &mut hashed, -3, 91);

        // The chunked drain path over the same stream, both stores.
        let mut dense_chunked = mk(CellStoreKind::Dense);
        let mut hashed_chunked = mk(CellStoreKind::Hashed);
        let mut buf = events.clone();
        dense_chunked.ingest_drain(&mut buf);
        prop_assert!(buf.is_empty());
        buf = events;
        hashed_chunked.ingest_drain(&mut buf);
        assert_aggs_agree(&mut dense_chunked, &mut hashed_chunked, -3, 91);
        assert_case_eq(&dense.snapshot(-3, 91), &dense_chunked.snapshot(-3, 91));
    }
}

/// Chaos-perturbed real telemetry (drops, duplicates, jitter, clock skew,
/// shuffled delivery, blanked metric seconds) folds identically through
/// both stores. Records are fed in raw perturbed order — genuinely
/// out-of-order, exercising the ring's prepend and gap-fill paths.
#[test]
fn stores_agree_on_perturbed_telemetry() {
    for (seed, intensity) in [(21u64, 0.4), (22, 0.8)] {
        let cfg = ScenarioConfig::default().with_seed(seed).with_businesses(6).with_window(
            300, 180, 240,
        );
        let base = generate_base(&cfg);
        let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        let p = PerturbConfig::at_intensity(seed ^ 0x5EED, intensity);
        let (log, metrics) = simulate_telemetry(&scenario, Some(&p));

        let mk = |kind: CellStoreKind| {
            IncrementalAggregator::new(
                &scenario.workload.specs,
                IncrementalConfig::default().with_cell_store(kind),
            )
        };
        let mut dense = mk(CellStoreKind::Dense);
        let mut hashed = mk(CellStoreKind::Hashed);
        for rec in &log {
            dense.ingest(TelemetryEvent::Query(*rec));
            hashed.ingest(TelemetryEvent::Query(*rec));
        }
        for s in 0..metrics.active_session.len() {
            let sample = MetricsSample {
                second: metrics.start_second + s as i64,
                active_session: metrics.active_session[s],
                cpu_usage: metrics.cpu_usage[s],
                iops_usage: metrics.iops_usage[s],
                row_lock_waits: metrics.row_lock_waits[s],
                mdl_waits: metrics.mdl_waits[s],
                qps: metrics.qps[s],
                probes: Vec::new(),
            };
            dense.ingest(TelemetryEvent::Metrics(Box::new(sample.clone())));
            hashed.ingest(TelemetryEvent::Metrics(Box::new(sample)));
        }
        assert_aggs_agree(&mut dense, &mut hashed, 0, scenario.cfg.window_s);
    }
}
