//! Property equivalence of the fast stats kernels against their scalar
//! reference formulations.
//!
//! The kernel layer (`pinsql_timeseries::kernels`) promises two things:
//! the selection-based rolling median/MAD is *bit-identical* to the
//! allocate-and-sort reference, and the running `MomentAccumulator` is an
//! exact replacement for re-summing a window of integer-valued counts.
//! This suite drives both through seeded random streams, out-of-order
//! arrivals, perturbation-degraded streams (dropped, duplicated, and
//! spiked samples — the shapes the chaos layer produces), constant
//! series, and ±inf / NaN edge cases, comparing `KernelKind::Fast`
//! against `KernelKind::Reference` bitwise at every step.

use pinsql_timeseries::rolling::RollingWindow;
use pinsql_timeseries::{kernels, KernelKind, MomentAccumulator};

/// Deterministic LCG so every failure reproduces from a printed seed.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() & ((1 << 53) - 1)) as f64 / (1u64 << 53) as f64
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Asserts Fast and Reference median/MAD agree bitwise after every push.
fn assert_window_equivalence(capacity: usize, stream: &[f64], ctx: &str) {
    let mut w = RollingWindow::new(capacity);
    for (i, &x) in stream.iter().enumerate() {
        w.push(x);
        let fast = w.median_mad(KernelKind::Fast).expect("non-empty window");
        let reference = w.median_mad(KernelKind::Reference).expect("non-empty window");
        assert_eq!(
            (fast.0.to_bits(), fast.1.to_bits()),
            (reference.0.to_bits(), reference.1.to_bits()),
            "{ctx}: kernel divergence at step {i} (cap {capacity}, fast {fast:?}, reference {reference:?})"
        );
    }
}

#[test]
fn rolling_median_mad_matches_reference_on_random_streams() {
    for seed in 0..32u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let capacity = 1 + rng.below(64);
        let stream: Vec<f64> =
            (0..200).map(|_| (rng.next_f64() - 0.5) * 1e3).collect();
        assert_window_equivalence(capacity, &stream, &format!("seed {seed}"));
    }
}

#[test]
fn rolling_median_mad_matches_reference_on_out_of_order_streams() {
    // The window is arrival-ordered, so "out of order" means the sorted
    // buffer sees inserts at arbitrary positions: feed ascending, then
    // descending, then block-shuffled versions of the same values.
    let mut rng = Lcg(0xD15EA5E);
    let mut values: Vec<f64> = (0..150).map(|_| rng.next_f64() * 100.0).collect();
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for capacity in [1, 2, 5, 32] {
        assert_window_equivalence(capacity, &values, "ascending");
        let descending: Vec<f64> = values.iter().rev().copied().collect();
        assert_window_equivalence(capacity, &descending, "descending");
        let mut shuffled = values.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.below(i + 1));
        }
        assert_window_equivalence(capacity, &shuffled, "shuffled");
    }
}

#[test]
fn rolling_median_mad_matches_reference_on_degraded_streams() {
    // Perturbation-shaped degradation: a smooth baseline with samples
    // dropped (gaps change the window's phase), duplicated (heavy ties),
    // and spiked (outliers push the median off-center).
    for seed in 0..16u64 {
        let mut rng = Lcg(0xBAD0 + seed);
        let mut stream = Vec::new();
        let mut last = 10.0;
        for t in 0..300 {
            let base = 10.0 + (t as f64 / 20.0).sin() * 2.0 + rng.next_f64();
            match rng.below(10) {
                0 => continue,                      // dropped sample
                1 => {
                    stream.push(last);              // duplicated sample
                    stream.push(last);
                }
                2 => stream.push(base * 50.0),      // spike
                _ => stream.push(base),
            }
            last = base;
        }
        let capacity = 1 + rng.below(48);
        assert_window_equivalence(capacity, &stream, &format!("degraded seed {seed}"));
    }
}

#[test]
fn rolling_median_mad_matches_reference_on_constant_series() {
    for value in [0.0, -0.0, 1.0, -273.15, 1e300] {
        let stream = vec![value; 40];
        for capacity in [1, 2, 7, 40] {
            assert_window_equivalence(capacity, &stream, "constant");
        }
        let mut w = RollingWindow::new(8);
        for _ in 0..8 {
            w.push(value);
        }
        let (med, mad) = w.median_mad(KernelKind::Fast).unwrap();
        assert_eq!(med.to_bits(), value.to_bits(), "median of a constant series is the value");
        assert_eq!(mad, 0.0, "MAD of a constant series is zero");
    }
}

#[test]
fn rolling_median_mad_matches_reference_with_infinities() {
    // ±inf sorts and subtracts deterministically as long as the median
    // itself stays finite; both formulations must agree bit-for-bit.
    let mut stream: Vec<f64> = (0..30).map(|i| i as f64).collect();
    stream[7] = f64::INFINITY;
    stream[19] = f64::NEG_INFINITY;
    for capacity in [5, 9, 30] {
        assert_window_equivalence(capacity, &stream, "infinities");
    }
}

/// Scalar reference for the moment accumulator: re-sum the live window.
fn serial_moments(window: &[f64]) -> (u64, f64, f64) {
    (
        window.len() as u64,
        window.iter().sum(),
        window.iter().map(|x| x * x).sum(),
    )
}

#[test]
fn moments_match_serial_resum_on_integer_sliding_windows() {
    // The collector feeds the accumulator per-second execution counts —
    // integer-valued f64s — and evicts them as the retention window
    // slides. Push/evict must be an exact inverse there: equality is
    // bitwise, not approximate.
    for seed in 0..16u64 {
        let mut rng = Lcg(0xC0DE + seed);
        let mut acc = MomentAccumulator::default();
        let mut window: Vec<f64> = Vec::new();
        for step in 0..500 {
            let x = rng.below(1000) as f64;
            acc.push(x);
            window.push(x);
            while window.len() > 60 {
                acc.evict(window.remove(0));
            }
            let (n, sum, sumsq) = serial_moments(&window);
            assert_eq!(acc.count(), n, "seed {seed} step {step}");
            assert_eq!(acc.sum().to_bits(), sum.to_bits(), "seed {seed} step {step}");
            assert_eq!(acc.sum_sq().to_bits(), sumsq.to_bits(), "seed {seed} step {step}");
        }
    }
}

#[test]
fn moments_merge_matches_sequential_on_integer_streams() {
    let mut rng = Lcg(0x5EED);
    let stream: Vec<f64> = (0..256).map(|_| rng.below(10_000) as f64).collect();
    for split in [0, 1, 100, 255, 256] {
        let mut left = MomentAccumulator::default();
        let mut right = MomentAccumulator::default();
        for &x in &stream[..split] {
            left.push(x);
        }
        for &x in &stream[split..] {
            right.push(x);
        }
        left.merge(&right);
        let mut sequential = MomentAccumulator::default();
        for &x in &stream {
            sequential.push(x);
        }
        assert_eq!(left.count(), sequential.count());
        assert_eq!(left.sum().to_bits(), sequential.sum().to_bits(), "split {split}");
        assert_eq!(left.sum_sq().to_bits(), sequential.sum_sq().to_bits(), "split {split}");
    }
}

#[test]
fn moments_track_serial_resum_within_ulps_on_real_valued_streams() {
    // For non-integer data push/evict is no longer exactly invertible;
    // the contract is closeness, and degenerate windows must still yield
    // a non-negative variance (the cancellation floor).
    let mut rng = Lcg(0xF00D);
    let mut acc = MomentAccumulator::default();
    let mut window: Vec<f64> = Vec::new();
    for _ in 0..2000 {
        let x = rng.next_f64() * 20.0 - 5.0;
        acc.push(x);
        window.push(x);
        if window.len() > 120 {
            acc.evict(window.remove(0));
        }
        let (_, sum, _) = serial_moments(&window);
        assert!((acc.sum() - sum).abs() <= 1e-9 * (1.0 + sum.abs()));
        assert!(acc.variance().unwrap() >= 0.0, "variance floor");
    }
    let mut constant = MomentAccumulator::default();
    for _ in 0..50 {
        constant.push(1e8 + 0.5);
    }
    assert_eq!(constant.variance(), Some(0.0), "constant series variance floors at zero");
}

#[test]
fn moments_propagate_non_finite_values_like_the_serial_loop() {
    let mut acc = MomentAccumulator::default();
    for x in [1.0, f64::NAN, 2.0] {
        acc.push(x);
    }
    assert!(acc.sum().is_nan() && acc.mean().unwrap().is_nan());
    let mut inf = MomentAccumulator::default();
    for x in [1.0, f64::INFINITY, 2.0] {
        inf.push(x);
    }
    assert_eq!(inf.sum(), f64::INFINITY);
    assert_eq!(inf.sum_sq(), f64::INFINITY);
}

#[test]
fn slice_kernels_agree_with_serial_loops() {
    // The lane-split sum/sumsq/dot promise ~ulp agreement with the serial
    // loop in general and bitwise equality on integer-valued data.
    let mut rng = Lcg(0xAB5);
    for n in [0usize, 1, 7, 8, 9, 64, 65, 333] {
        let xs: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 3.0).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 3.0).collect();
        let serial_sum: f64 = xs.iter().sum();
        let serial_dot: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        assert!((kernels::sum(&xs) - serial_sum).abs() <= 1e-9 * (1.0 + serial_sum.abs()));
        assert!((kernels::dot(&xs, &ys) - serial_dot).abs() <= 1e-9 * (1.0 + serial_dot.abs()));

        let counts: Vec<f64> = (0..n).map(|_| rng.below(100_000) as f64).collect();
        let serial: f64 = counts.iter().sum();
        if n > 0 {
            assert_eq!(kernels::sum(&counts).to_bits(), serial.to_bits(), "integer sums are exact");
        }
    }
    // std's `Iterator::sum` folds from a -0.0 identity, so the *serial*
    // empty sum is -0.0; the kernel's is +0.0. Numerically equal — and the
    // kernel's sign is the stable one across input lengths.
    assert_eq!(kernels::sum(&[]).to_bits(), 0.0f64.to_bits());
    assert!(kernels::sum(&[1.0, f64::NAN]).is_nan(), "NaN propagates");
    assert!(kernels::sumsq(&[f64::INFINITY]).is_infinite());
}
