//! Property tests for instance snapshot/restore.
//!
//! The contract under test: for any stream prefix `s`,
//! `restore(snapshot(s))` then draining the tail is indistinguishable —
//! health, counters, and the closed labelled case all bit-identical —
//! from an instance that never snapshotted. Streams come from three
//! generators: seeded random events (out-of-order arrivals, corrupt
//! records, interleaved metrics), chaos-perturbed real scenario
//! telemetry, and a deterministic short stream snapshotted at **every**
//! position.

use pinsql_collector::{CaseData, CellStoreKind};
use pinsql_dbsim::{MetricsSample, QueryRecord, TelemetryEvent};
use pinsql_detect::KernelKind;
use pinsql_engine::{InstanceSnapshot, OnlineInstance};
use pinsql_scenario::{
    generate_base, inject, materialize_events, AnomalyKind, LabeledCase, PerturbConfig, Scenario,
    ScenarioConfig,
};
use pinsql_workload::SpecId;
use proptest::prelude::*;

const DELTA_S: i64 = 60;

/// A small positive scenario: big enough for real detector activity,
/// small enough for hundreds of proptest round-trips.
fn small_scenario(seed: u64) -> Scenario {
    let cfg = ScenarioConfig {
        seed,
        n_business: 4,
        n_giants: 1,
        root_rate: (1.0, 3.0),
        giant_rate: (6.0, 10.0),
        window_s: 240,
        anomaly_start: 120,
        anomaly_end: 180,
        cores: 2.0,
        io_channels: 4.0,
    };
    let base = generate_base(&cfg);
    inject(&base, &cfg, AnomalyKind::BusinessSpike)
}

fn assert_case_eq(a: &CaseData, b: &CaseData, what: &str) {
    assert_eq!(a.ts, b.ts, "{what}: ts");
    assert_eq!(a.te, b.te, "{what}: te");
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.templates.len(), b.templates.len(), "{what}: template count");
    for (x, y) in a.templates.iter().zip(&b.templates) {
        assert_eq!(x.id, y.id, "{what}: template id");
        assert_eq!(x.record_idx, y.record_idx, "{what}: record_idx of {:?}", x.id);
        assert_eq!(x.series.start, y.series.start, "{what}: series start of {:?}", x.id);
        assert_eq!(x.series.execution_count, y.series.execution_count, "{what}: {:?}", x.id);
        assert_eq!(x.series.total_rt_ms, y.series.total_rt_ms, "{what}: {:?}", x.id);
        assert_eq!(x.series.examined_rows, y.series.examined_rows, "{what}: {:?}", x.id);
    }
    assert_eq!(a.metrics.active_session, b.metrics.active_session, "{what}: active_session");
    assert_eq!(a.metrics.qps, b.metrics.qps, "{what}: qps");
}

fn assert_lc_eq(a: &LabeledCase, b: &LabeledCase, what: &str) {
    assert_eq!(a.window, b.window, "{what}: window");
    assert_eq!(a.detected, b.detected, "{what}: detected");
    assert_eq!(a.anomaly_type, b.anomaly_type, "{what}: anomaly_type");
    assert_eq!(a.truth.rsqls, b.truth.rsqls, "{what}: truth rsqls");
    assert_eq!(a.truth.hsqls, b.truth.hsqls, "{what}: truth hsqls");
    assert_eq!(a.minutes_origin, b.minutes_origin, "{what}: minutes_origin");
    assert_case_eq(&a.case, &b.case, what);
}

/// Ingest `events[..split]`, snapshot, restore (through the untrusted
/// `from_bytes` path), drain the tail on both the snapshotted-and-
/// continued instance and the restored one, and compare everything —
/// including against a baseline that never snapshotted.
fn round_trip_at(
    scenario: &Scenario,
    events: &[TelemetryEvent],
    split: usize,
    kernel: KernelKind,
    cells: CellStoreKind,
) {
    let mk = || OnlineInstance::new(scenario, DELTA_S).with_kernel(kernel).with_cell_store(cells);

    let mut baseline = mk();
    baseline.ingest_stream(events.to_vec());

    let mut live = mk();
    live.ingest_stream(events[..split].to_vec());
    let snap = live.snapshot();
    assert_eq!(snap.kernel(), kernel);
    assert_eq!(snap.cellstore_kind(), cells);
    let wrapped = InstanceSnapshot::from_bytes(snap.into_bytes()).expect("own bytes revalidate");
    let mut restored = OnlineInstance::restore(scenario, &wrapped).expect("own snapshot restores");

    assert_eq!(restored.events_ingested(), live.events_ingested());
    assert_eq!(restored.health_snapshot(), live.health_snapshot(), "health after restore");
    if cells == CellStoreKind::Dense {
        // The dense store serializes in slot order, so re-serializing the
        // restored state is byte-idempotent. (The hashed store is
        // behaviorally exact but not byte-stable across map iteration.)
        assert_eq!(restored.snapshot().as_bytes(), wrapped.as_bytes(), "byte idempotence");
    }

    live.ingest_stream(events[split..].to_vec());
    restored.ingest_stream(events[split..].to_vec());
    assert_eq!(restored.health_snapshot(), live.health_snapshot(), "health after drain");
    assert_eq!(baseline.health_snapshot(), live.health_snapshot(), "health vs baseline");

    let lc_base = baseline.close_case();
    let lc_live = live.close_case();
    let lc_restored = restored.close_case();
    assert_lc_eq(&lc_live, &lc_base, "snapshotted-and-continued vs never-snapshotted");
    assert_lc_eq(&lc_restored, &lc_base, "restored vs never-snapshotted");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeded random streams: arrivals in any order (including before the
    /// ring start), a sprinkle of non-finite records, interleaved metric
    /// samples and ticks — snapshot at a random position always
    /// round-trips exactly.
    #[test]
    fn random_streams_round_trip(
        raw in prop::collection::vec(
            // (spec, second, sub-ms, response, rows, corrupt)
            (0usize..6, -3i64..90, 0.0f64..1000.0, 0.1f64..500.0, 0u64..100, 0u8..20),
            1..200,
        ),
        tick_every in 1usize..30,
        split_bias in 0.0f64..1.0,
        fast_kernel in any::<bool>(),
        dense in any::<bool>(),
    ) {
        let scenario = small_scenario(7);
        let mut events: Vec<TelemetryEvent> = Vec::new();
        for (i, &(spec, sec, sub_ms, rt, rows, corrupt)) in raw.iter().enumerate() {
            let (start_ms, response_ms) = match corrupt {
                0 => (f64::NAN, rt),
                1 => (sec as f64 * 1000.0 + sub_ms, f64::INFINITY),
                _ => (sec as f64 * 1000.0 + sub_ms, rt),
            };
            events.push(TelemetryEvent::Query(QueryRecord {
                spec: SpecId(spec % scenario.workload.specs.len()),
                start_ms,
                response_ms,
                examined_rows: rows,
            }));
            if i % tick_every == tick_every - 1 {
                let hi = raw[..=i].iter().map(|r| r.1).max().unwrap_or(0).max(0);
                events.push(TelemetryEvent::Metrics(Box::new(MetricsSample {
                    second: hi,
                    active_session: 2.0 + (i % 7) as f64,
                    ..Default::default()
                })));
                events.push(TelemetryEvent::Tick { second: hi + 1 });
            }
        }
        let split = ((events.len() as f64) * split_bias) as usize;
        let kernel = if fast_kernel { KernelKind::Fast } else { KernelKind::Reference };
        let cells = if dense { CellStoreKind::Dense } else { CellStoreKind::Hashed };
        round_trip_at(&scenario, &events, split.min(events.len()), kernel, cells);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chaos-perturbed real telemetry: dropped/duplicated/jittered/
    /// reordered records and blanked metric seconds. Whatever the
    /// degradation, a mid-stream snapshot round-trips exactly.
    #[test]
    fn perturbed_streams_round_trip(
        pseed in 0u64..1_000,
        skew in -50.0f64..50.0,
        reorder in any::<bool>(),
        split_bias in 0.0f64..1.0,
        dense in any::<bool>(),
    ) {
        let scenario = small_scenario(11);
        let perturb = PerturbConfig {
            seed: pseed,
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            jitter_ms: 30.0,
            clock_skew_ms: skew,
            reorder,
            metric_blank_prob: 0.05,
        };
        let events = materialize_events(&scenario, Some(&perturb));
        let split = ((events.len() as f64) * split_bias) as usize;
        let cells = if dense { CellStoreKind::Dense } else { CellStoreKind::Hashed };
        round_trip_at(&scenario, &events, split.min(events.len()), KernelKind::Fast, cells);
    }
}

/// Exhaustive positions: a deterministic 60-second stream (warm-up,
/// surge, recovery) snapshotted at **every** event index, 0 through len —
/// each restore drains the tail and must close the same case as a
/// baseline that never snapshotted.
#[test]
fn every_split_position_round_trips() {
    let scenario = small_scenario(3);
    let n_specs = scenario.workload.specs.len();
    let mut events: Vec<TelemetryEvent> = Vec::new();
    for s in 0..60i64 {
        for q in 0..3 {
            events.push(TelemetryEvent::Query(QueryRecord {
                spec: SpecId(((s as usize) * 3 + q) % n_specs),
                start_ms: s as f64 * 1000.0 + q as f64 * 250.0,
                response_ms: 2.0 + q as f64,
                examined_rows: 10,
            }));
        }
        let surge = (40..55).contains(&s);
        events.push(TelemetryEvent::Metrics(Box::new(MetricsSample {
            second: s,
            active_session: if surge { 90.0 } else { 4.0 },
            cpu_usage: if surge { 0.9 } else { 0.3 },
            ..Default::default()
        })));
        events.push(TelemetryEvent::Tick { second: s + 1 });
    }

    let mk = || OnlineInstance::new(&scenario, DELTA_S);
    let mut baseline = mk();
    baseline.ingest_stream(events.clone());
    let base_health = baseline.health_snapshot();
    let lc_base = baseline.close_case();

    for split in 0..=events.len() {
        let mut live = mk();
        live.ingest_stream(events[..split].to_vec());
        let snap = live.snapshot();
        let mut restored =
            OnlineInstance::restore(&scenario, &snap).expect("own snapshot restores");
        assert_eq!(restored.snapshot().as_bytes(), snap.as_bytes(), "split {split}: idempotence");
        restored.ingest_stream(events[split..].to_vec());
        assert_eq!(restored.health_snapshot(), base_health, "split {split}: health");
        assert_lc_eq(&restored.close_case(), &lc_base, &format!("split {split}"));
    }
}
