//! Property tests for the incremental window cut.
//!
//! The contract under test: for any ingest stream, an instance running
//! with [`CutKind::Incremental`] closes its case carrying a
//! [`WindowCut`] whose per-template 1-minute rows are **bit-identical**
//! to what the reference path re-derives from the raw series
//! (`TemplateSeries::per_minute`), whose normalized matrix matches
//! `NormalizedMatrix::from_series` row for row, and whose advisory gate
//! is always a finite value in `[-1, 1]` — while everything *outside*
//! the cut is byte-for-byte the same as a [`CutKind::Reference`] run.
//! Streams come from seeded random generators (out-of-order arrivals,
//! ±inf/NaN records), chaos-perturbed scenario telemetry, constant
//! workloads, retention-evicting long windows, and mid-window
//! snapshot/restore splits.

use pinsql_collector::{CaseData, CellStoreKind, WindowCut};
use pinsql_dbsim::{MetricsSample, QueryRecord, TelemetryEvent};
use pinsql_detect::CutKind;
use pinsql_engine::{InstanceSnapshot, OnlineInstance};
use pinsql_scenario::{
    generate_base, inject, materialize_events, AnomalyKind, PerturbConfig, Scenario,
    ScenarioConfig,
};
use pinsql_timeseries::NormalizedMatrix;
use pinsql_workload::SpecId;
use proptest::prelude::*;

const DELTA_S: i64 = 60;

/// A small positive scenario: big enough for real detector activity,
/// small enough for hundreds of proptest round-trips.
fn small_scenario(seed: u64) -> Scenario {
    let cfg = ScenarioConfig {
        seed,
        n_business: 4,
        n_giants: 1,
        root_rate: (1.0, 3.0),
        giant_rate: (6.0, 10.0),
        window_s: 240,
        anomaly_start: 120,
        anomaly_end: 180,
        cores: 2.0,
        io_channels: 4.0,
    };
    let base = generate_base(&cfg);
    inject(&base, &cfg, AnomalyKind::BusinessSpike)
}

/// The cut's rows equal the per-template reference derivation bit for
/// bit, and normalizing them reproduces `from_series` exactly.
fn assert_cut_is_reference_exact(case: &CaseData, what: &str) -> WindowCut {
    let cut = case.cut.as_deref().unwrap_or_else(|| panic!("{what}: incremental cut missing"));
    assert_eq!(cut.minute_rows.len(), case.templates.len(), "{what}: row count");
    assert_eq!(cut.gate.len(), case.templates.len(), "{what}: gate count");
    assert_eq!(cut.minute_start, case.ts.div_euclid(60), "{what}: minute origin");
    assert!(cut.moments_pushed >= cut.moments_evicted, "{what}: eviction exceeds pushes");

    let per_minutes: Vec<Vec<f64>> =
        case.templates.iter().map(|t| t.series.per_minute()).collect();
    for (i, per_min) in per_minutes.iter().enumerate() {
        assert_eq!(cut.minute_rows[i].len(), per_min.len(), "{what}: row {i} length");
        for (m, (a, b)) in cut.minute_rows[i].iter().zip(per_min).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: template {i} minute {m}: cut {a} vs per_minute {b}"
            );
        }
        assert!(
            cut.gate[i].is_finite() && (-1.0..=1.0).contains(&cut.gate[i]),
            "{what}: gate {i} out of range: {}",
            cut.gate[i]
        );
    }

    let cut_matrix = NormalizedMatrix::from_series(&cut.row_refs());
    let refs: Vec<&[f64]> = per_minutes.iter().map(|v| v.as_slice()).collect();
    let ref_matrix = NormalizedMatrix::from_series(&refs);
    assert_eq!(cut_matrix.row_len(), ref_matrix.row_len(), "{what}: matrix row length");
    for i in 0..per_minutes.len() {
        match (cut_matrix.row(i), ref_matrix.row(i)) {
            (Some(a), Some(b)) => {
                for (m, (x, y)) in a.iter().zip(b).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{what}: matrix row {i} col {m}");
                }
            }
            (None, None) => {}
            (a, b) => panic!(
                "{what}: matrix row {i} validity diverged (cut {:?}, reference {:?})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
    cut.clone()
}

/// Everything *outside* the cut is identical across the two cut paths.
fn assert_case_eq_modulo_cut(a: &CaseData, b: &CaseData, what: &str) {
    assert_eq!(a.ts, b.ts, "{what}: ts");
    assert_eq!(a.te, b.te, "{what}: te");
    assert_eq!(a.records, b.records, "{what}: records");
    assert_eq!(a.templates.len(), b.templates.len(), "{what}: template count");
    for (x, y) in a.templates.iter().zip(&b.templates) {
        assert_eq!(x.id, y.id, "{what}: template id");
        assert_eq!(x.series.execution_count, y.series.execution_count, "{what}: {:?}", x.id);
        assert_eq!(x.series.total_rt_ms, y.series.total_rt_ms, "{what}: {:?}", x.id);
    }
    assert_eq!(a.metrics.active_session, b.metrics.active_session, "{what}: active_session");
}

/// Runs one stream through both cut paths and checks the full contract.
fn check_stream(scenario: &Scenario, events: &[TelemetryEvent], dense: bool, what: &str) {
    let cells = if dense { CellStoreKind::Dense } else { CellStoreKind::Hashed };
    let mk = |cut: CutKind| {
        OnlineInstance::new(scenario, DELTA_S).with_cell_store(cells).with_cut(cut)
    };

    let mut inc = mk(CutKind::Incremental);
    inc.ingest_stream(events.to_vec());
    let lc = inc.close_case();

    let mut reference = mk(CutKind::Reference);
    reference.ingest_stream(events.to_vec());
    let lc_ref = reference.close_case();

    assert!(lc_ref.case.cut.is_none(), "{what}: reference path must not carry a cut");
    assert_cut_is_reference_exact(&lc.case, what);
    assert_case_eq_modulo_cut(&lc.case, &lc_ref.case, what);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Seeded random streams: arrivals in any order (including before the
    /// ring start), a sprinkle of NaN/∞ records, interleaved metric
    /// samples and ticks — the running moments always reproduce the
    /// reference derivation exactly.
    #[test]
    fn random_streams_cut_exactly(
        raw in prop::collection::vec(
            // (spec, second, sub-ms, response, rows, corrupt)
            (0usize..6, -3i64..90, 0.0f64..1000.0, 0.1f64..500.0, 0u64..100, 0u8..20),
            1..200,
        ),
        tick_every in 1usize..30,
        dense in any::<bool>(),
    ) {
        let scenario = small_scenario(7);
        let mut events: Vec<TelemetryEvent> = Vec::new();
        for (i, &(spec, sec, sub_ms, rt, rows, corrupt)) in raw.iter().enumerate() {
            let (start_ms, response_ms) = match corrupt {
                0 => (f64::NAN, rt),
                1 => (sec as f64 * 1000.0 + sub_ms, f64::INFINITY),
                2 => (f64::NEG_INFINITY, rt),
                _ => (sec as f64 * 1000.0 + sub_ms, rt),
            };
            events.push(TelemetryEvent::Query(QueryRecord {
                spec: SpecId(spec % scenario.workload.specs.len()),
                start_ms,
                response_ms,
                examined_rows: rows,
            }));
            if i % tick_every == tick_every - 1 {
                let hi = raw[..=i].iter().map(|r| r.1).max().unwrap_or(0).max(0);
                events.push(TelemetryEvent::Metrics(Box::new(MetricsSample {
                    second: hi,
                    active_session: 2.0 + (i % 7) as f64,
                    ..Default::default()
                })));
                events.push(TelemetryEvent::Tick { second: hi + 1 });
            }
        }
        check_stream(&scenario, &events, dense, "random stream");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chaos-perturbed real telemetry: dropped/duplicated/jittered/
    /// reordered records and blanked metric seconds never desynchronize
    /// the running moments from the raw series.
    #[test]
    fn perturbed_streams_cut_exactly(
        pseed in 0u64..1_000,
        skew in -50.0f64..50.0,
        reorder in any::<bool>(),
        dense in any::<bool>(),
    ) {
        let scenario = small_scenario(11);
        let perturb = PerturbConfig {
            seed: pseed,
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            jitter_ms: 30.0,
            clock_skew_ms: skew,
            reorder,
            metric_blank_prob: 0.05,
        };
        let events = materialize_events(&scenario, Some(&perturb));
        check_stream(&scenario, &events, dense, "perturbed stream");
    }
}

/// A perfectly constant workload — zero variance on every template and
/// on the session metric — yields degenerate-but-finite gate scores and
/// exact constant rows.
#[test]
fn constant_stream_cut_is_exact_and_degenerate_gate_is_finite() {
    let scenario = small_scenario(3);
    let n_specs = scenario.workload.specs.len();
    let mut events: Vec<TelemetryEvent> = Vec::new();
    for s in 0..240i64 {
        for q in 0..2 {
            events.push(TelemetryEvent::Query(QueryRecord {
                spec: SpecId(q % n_specs),
                start_ms: s as f64 * 1000.0 + q as f64 * 400.0,
                response_ms: 5.0,
                examined_rows: 10,
            }));
        }
        events.push(TelemetryEvent::Metrics(Box::new(MetricsSample {
            second: s,
            active_session: 4.0,
            ..Default::default()
        })));
        events.push(TelemetryEvent::Tick { second: s + 1 });
    }
    check_stream(&scenario, &events, true, "constant stream");
    check_stream(&scenario, &events, false, "constant stream (hashed)");
}

/// A stream that runs far past the retention horizon: early seconds are
/// evicted from the rings, the eviction counter advances, and the cut at
/// close still matches the reference derivation over what remains.
#[test]
fn eviction_past_the_window_stays_exact() {
    let scenario = small_scenario(5);
    let events = materialize_events(&scenario, None);
    // window_s 240 with a 60 s look-back: three quarters of the stream
    // must age out of the rings before the case closes.
    let mut inst = OnlineInstance::new(&scenario, DELTA_S).with_cut(CutKind::Incremental);
    inst.ingest_stream(events.clone());
    let lc = inst.close_case();
    let cut = assert_cut_is_reference_exact(&lc.case, "evicting stream");
    assert!(cut.moments_pushed > 0, "long stream must push moments");
    assert!(cut.moments_evicted > 0, "a 240 s stream under a 60 s look-back must evict");
    check_stream(&scenario, &events, true, "evicting stream (vs reference)");
}

/// Snapshot mid-window, restore through the untrusted byte path, drain
/// the tail: the restored instance's cut is bit-identical to the one
/// from an instance that never snapshotted.
#[test]
fn snapshot_restore_mid_window_preserves_the_cut() {
    let scenario = small_scenario(9);
    let events = materialize_events(&scenario, None);
    for frac in [0.25f64, 0.5, 0.85] {
        let split = ((events.len() as f64) * frac) as usize;
        let mk = || OnlineInstance::new(&scenario, DELTA_S).with_cut(CutKind::Incremental);

        let mut baseline = mk();
        baseline.ingest_stream(events.clone());
        let lc_base = baseline.close_case();

        let mut live = mk();
        live.ingest_stream(events[..split].to_vec());
        let snap = InstanceSnapshot::from_bytes(live.snapshot().into_bytes())
            .expect("own bytes revalidate");
        let mut restored =
            OnlineInstance::restore(&scenario, &snap).expect("own snapshot restores");
        assert_eq!(restored.cut(), CutKind::Incremental, "split {split}: cut kind survives");
        restored.ingest_stream(events[split..].to_vec());
        let lc_restored = restored.close_case();

        let what = format!("restored at {split}");
        let cut_base = assert_cut_is_reference_exact(&lc_base.case, "baseline");
        let cut_restored = assert_cut_is_reference_exact(&lc_restored.case, &what);
        assert_case_eq_modulo_cut(&lc_restored.case, &lc_base.case, &what);
        assert_eq!(cut_restored.minute_rows, cut_base.minute_rows, "{what}: rows");
        for (i, (a, b)) in cut_restored.gate.iter().zip(&cut_base.gate).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{what}: gate {i}");
        }
    }
}
