//! Cross-crate validation of the §IV-C session estimator against the
//! simulator's ground truth: the estimator never sees the true probe
//! instants, yet its per-second reconstruction must track them.

use pinsql::{estimate_sessions, EstimatorKind, PinSqlConfig};
use pinsql_collector::aggregate_case;
use pinsql_dbsim::run_open_loop;
use pinsql_scenario::{generate_base, inject, AnomalyKind, ScenarioConfig};
use pinsql_timeseries::{mean_squared_error, pearson};

#[test]
fn bucketed_estimate_tracks_probe_ground_truth() {
    let cfg = ScenarioConfig::default().with_seed(55);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::RowLock);
    let out = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);
    let case = aggregate_case(&out.log, &scenario.workload.specs, &out.metrics, 0, cfg.window_s);

    let truth: Vec<f64> = case.metrics.probes.session_series();
    assert_eq!(truth.len(), cfg.window_s as usize);

    let run = |kind, k| {
        let pcfg = PinSqlConfig::default().with_estimator(kind).with_buckets(k);
        let est = estimate_sessions(&case, &pcfg);
        (pearson(&est.instance_estimate, &truth), mean_squared_error(&est.instance_estimate, &truth))
    };
    let (corr_rt, mse_rt) = run(EstimatorKind::ByRt, 10);
    let (corr_nb, mse_nb) = run(EstimatorKind::NoBuckets, 1);
    let (corr_k10, mse_k10) = run(EstimatorKind::Buckets, 10);

    // Table III's ordering.
    assert!(corr_k10 > 0.9, "bucketed estimate must track truth: {corr_k10}");
    assert!(corr_nb > corr_rt, "expected-activity beats RT proxy: {corr_nb} vs {corr_rt}");
    assert!(corr_k10 >= corr_nb - 0.01, "buckets must not hurt: {corr_k10} vs {corr_nb}");
    assert!(mse_rt > mse_k10, "RT proxy has far larger error: {mse_rt} vs {mse_k10}");
    assert!(mse_nb >= mse_k10 * 0.5, "sanity: errors are comparable in scale");
}

#[test]
fn per_template_estimates_sum_to_instance_estimate() {
    let cfg = ScenarioConfig::default().with_seed(56).with_businesses(6);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    let out = run_open_loop(&scenario.workload, &scenario.sim, 0, 400);
    let case = aggregate_case(&out.log, &scenario.workload.specs, &out.metrics, 0, 400);
    let est = estimate_sessions(&case, &PinSqlConfig::default());
    for t in 0..case.n_seconds() {
        let sum: f64 = est.per_template.iter().map(|row| row[t]).sum();
        assert!(
            (sum - est.instance_estimate[t]).abs() < 1e-6,
            "decomposition must be exact at t={t}"
        );
    }
}

#[test]
fn estimator_never_reads_true_probe_instants() {
    // Scramble the recorded true instants (keeping the reported values):
    // the estimate must be bit-identical, proving the estimator only uses
    // the per-second values, as the algorithm requires.
    let cfg = ScenarioConfig::default().with_seed(57).with_businesses(4);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let out = run_open_loop(&scenario.workload, &scenario.sim, 0, 300);
    let case = aggregate_case(&out.log, &scenario.workload.specs, &out.metrics, 0, 300);
    let mut scrambled = case.clone();
    for p in &mut scrambled.metrics.probes.samples {
        p.true_instant_ms = -1.0;
    }
    let pcfg = PinSqlConfig::default();
    let a = estimate_sessions(&case, &pcfg);
    let b = estimate_sessions(&scrambled, &pcfg);
    assert_eq!(a.selected_bucket, b.selected_bucket);
    assert_eq!(a.instance_estimate, b.instance_estimate);
}
