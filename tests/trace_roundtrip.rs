//! Traces decouple simulation from diagnosis: a written-and-reloaded trace
//! must diagnose identically to the live simulation output.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_collector::aggregate_case;
use pinsql_dbsim::{run_open_loop, Trace};
use pinsql_scenario::{generate_base, inject, AnomalyKind, ScenarioConfig};
use pinsql_detect::AnomalyWindow;

#[test]
fn diagnosis_is_identical_through_a_trace_round_trip() {
    let cfg = ScenarioConfig::default().with_seed(81).with_businesses(6);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let out = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);

    // Round-trip through the JSONL trace format.
    let trace = Trace::from_output("poor-sql seed 81", &out);
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("write trace");
    let reloaded = Trace::read_jsonl(&buf[..]).expect("read trace");
    assert_eq!(reloaded.label, "poor-sql seed 81");
    assert_eq!(reloaded.log.len(), out.log.len());

    let window = AnomalyWindow {
        anomaly_start: cfg.anomaly_start,
        anomaly_end: cfg.anomaly_end,
        delta_s: 600,
    }
    .clamped(0, cfg.window_s);

    let live = aggregate_case(
        &out.log,
        &scenario.workload.specs,
        &out.metrics,
        window.ts(),
        window.te(),
    );
    let from_trace = aggregate_case(
        &reloaded.log,
        &scenario.workload.specs,
        &reloaded.metrics,
        window.ts(),
        window.te(),
    );

    let pinsql = PinSql::new(PinSqlConfig::default());
    let history = pinsql_collector::HistoryStore::new();
    let d_live = pinsql.diagnose(&live, &window, &history, 1_000_000);
    let d_trace = pinsql.diagnose(&from_trace, &window, &history, 1_000_000);

    assert_eq!(
        d_live.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>(),
        d_trace.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>(),
        "R-SQL rankings must be bit-identical through the trace"
    );
    assert_eq!(
        d_live.hsqls.iter().map(|r| r.id).collect::<Vec<_>>(),
        d_trace.hsqls.iter().map(|r| r.id).collect::<Vec<_>>()
    );
    assert_eq!(d_live.n_clusters, d_trace.n_clusters);
}
