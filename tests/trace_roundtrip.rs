//! Traces decouple simulation from diagnosis: a written-and-reloaded trace
//! must diagnose identically to the live simulation output.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_collector::aggregate_case;
use pinsql_dbsim::{run_open_loop, Trace};
use pinsql_scenario::{
    generate_base, inject, perturb_telemetry, AnomalyKind, PerturbConfig, ScenarioConfig,
};
use pinsql_detect::AnomalyWindow;
use proptest::prelude::*;

#[test]
fn diagnosis_is_identical_through_a_trace_round_trip() {
    let cfg = ScenarioConfig::default().with_seed(81).with_businesses(6);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let out = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);

    // Round-trip through the JSONL trace format.
    let trace = Trace::from_output("poor-sql seed 81", &out);
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("write trace");
    let reloaded = Trace::read_jsonl(&buf[..]).expect("read trace");
    assert_eq!(reloaded.label, "poor-sql seed 81");
    assert_eq!(reloaded.log.len(), out.log.len());

    let window = AnomalyWindow {
        anomaly_start: cfg.anomaly_start,
        anomaly_end: cfg.anomaly_end,
        delta_s: 600,
    }
    .clamped(0, cfg.window_s);

    let live = aggregate_case(
        &out.log,
        &scenario.workload.specs,
        &out.metrics,
        window.ts(),
        window.te(),
    );
    let from_trace = aggregate_case(
        &reloaded.log,
        &scenario.workload.specs,
        &reloaded.metrics,
        window.ts(),
        window.te(),
    );

    let pinsql = PinSql::new(PinSqlConfig::default());
    let history = pinsql_collector::HistoryStore::new();
    let d_live = pinsql.diagnose(&live, &window, &history, 1_000_000);
    let d_trace = pinsql.diagnose(&from_trace, &window, &history, 1_000_000);

    assert_eq!(
        d_live.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>(),
        d_trace.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>(),
        "R-SQL rankings must be bit-identical through the trace"
    );
    assert_eq!(
        d_live.hsqls.iter().map(|r| r.id).collect::<Vec<_>>(),
        d_trace.hsqls.iter().map(|r| r.id).collect::<Vec<_>>()
    );
    assert_eq!(d_live.n_clusters, d_trace.n_clusters);
}

#[test]
fn perturbed_telemetry_survives_the_trace_round_trip() {
    // Chaos-degraded telemetry is exactly what gets archived in production;
    // a trace written from a perturbed case must reload to a bit-identical
    // diagnosis, including when records were dropped, duplicated, jittered,
    // and delivered out of order.
    let cfg = ScenarioConfig::default().with_seed(82).with_businesses(6);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::RowLock);
    let mut out = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);
    let stats =
        perturb_telemetry(&mut out.log, &mut out.metrics, &PerturbConfig::at_intensity(820, 0.8));
    assert!(stats.records_dropped > 0, "intensity 0.8 should drop records");

    let trace = Trace::from_output("row-lock seed 82, degraded", &out);
    let mut buf = Vec::new();
    trace.write_jsonl(&mut buf).expect("write trace");
    let reloaded = Trace::read_jsonl(&buf[..]).expect("read trace");
    assert_eq!(reloaded.log.len(), out.log.len());

    // Re-serializing the reloaded trace must reproduce the bytes exactly:
    // JSONL round-trips perturbed (but always finite) telemetry losslessly.
    let mut buf2 = Vec::new();
    reloaded.write_jsonl(&mut buf2).expect("rewrite trace");
    assert_eq!(buf, buf2, "trace serialization must be a fixed point");

    let window = AnomalyWindow {
        anomaly_start: cfg.anomaly_start,
        anomaly_end: cfg.anomaly_end,
        delta_s: 600,
    }
    .clamped(0, cfg.window_s);

    let live = aggregate_case(
        &out.log,
        &scenario.workload.specs,
        &out.metrics,
        window.ts(),
        window.te(),
    );
    let from_trace = aggregate_case(
        &reloaded.log,
        &scenario.workload.specs,
        &reloaded.metrics,
        window.ts(),
        window.te(),
    );

    let pinsql = PinSql::new(PinSqlConfig::default());
    let history = pinsql_collector::HistoryStore::new();
    let d_live = pinsql.diagnose(&live, &window, &history, 1_000_000);
    let d_trace = pinsql.diagnose(&from_trace, &window, &history, 1_000_000);

    assert_eq!(
        d_live.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>(),
        d_trace.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>(),
        "degraded R-SQL rankings must be bit-identical through the trace"
    );
    assert_eq!(
        d_live.hsqls.iter().map(|r| r.id).collect::<Vec<_>>(),
        d_trace.hsqls.iter().map(|r| r.id).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any perturbation of a synthetic log yields telemetry that JSONL
    /// round-trips losslessly — write, read, write again, same bytes.
    #[test]
    fn perturbed_traces_serialize_to_a_fixed_point(
        seed in proptest::num::u64::ANY,
        intensity in 0.0f64..=1.0,
        n in 0usize..120,
    ) {
        use pinsql_dbsim::probe::{ProbeLog, ProbeSample};
        use pinsql_dbsim::{InstanceMetrics, QueryRecord, SimOutput};
        use pinsql_workload::SpecId;

        let log: Vec<QueryRecord> = (0..n)
            .map(|i| QueryRecord {
                spec: SpecId(i % 7),
                start_ms: i as f64 * 113.0,
                response_ms: 25.0 + (i % 13) as f64,
                examined_rows: (i % 29) as u64,
            })
            .collect();
        let m = n.min(60);
        let metrics = InstanceMetrics {
            start_second: 0,
            active_session: (0..m).map(|i| 1.0 + i as f64 * 0.1).collect(),
            cpu_usage: vec![0.4; m],
            iops_usage: vec![0.2; m],
            row_lock_waits: vec![0.0; m],
            mdl_waits: vec![0.0; m],
            qps: vec![8.0; m],
            probes: ProbeLog {
                samples: (0..m as i64)
                    .map(|second| ProbeSample {
                        second,
                        active_sessions: 1,
                        true_instant_ms: second as f64 * 1000.0 + 250.0,
                    })
                    .collect(),
            },
        };
        let mut out = SimOutput { log, metrics };
        perturb_telemetry(&mut out.log, &mut out.metrics, &PerturbConfig::at_intensity(seed, intensity));
        prop_assert!(out.log.iter().all(|r| r.start_ms.is_finite()));

        let trace = Trace::from_output("prop", &out);
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).expect("write trace");
        let reloaded = Trace::read_jsonl(&buf[..]).expect("read trace");
        prop_assert_eq!(reloaded.log.len(), out.log.len());
        let mut buf2 = Vec::new();
        reloaded.write_jsonl(&mut buf2).expect("rewrite trace");
        prop_assert_eq!(buf, buf2);
    }
}
