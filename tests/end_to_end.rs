//! Cross-crate integration tests: workload → simulator → collector →
//! detector → PinSQL, for every anomaly category.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_eval::first_hit_rank;
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};

fn diagnose(kind: AnomalyKind, seed: u64) -> (Option<usize>, Option<usize>, bool) {
    let cfg = ScenarioConfig::default().with_seed(seed);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, kind);
    let case = materialize(&scenario, 600);
    let d = PinSql::new(PinSqlConfig::default()).diagnose(
        &case.case,
        &case.window,
        &case.history,
        case.minutes_origin,
    );
    let r_ids: Vec<_> = d.rsqls.iter().map(|r| r.id).collect();
    let h_ids: Vec<_> = d.hsqls.iter().map(|h| h.id).collect();
    (
        first_hit_rank(&r_ids, &case.truth.rsqls),
        first_hit_rank(&h_ids, &case.truth.hsqls),
        case.detected,
    )
}

#[test]
fn business_spike_pipeline() {
    let (r, h, detected) = diagnose(AnomalyKind::BusinessSpike, 9100);
    assert!(detected, "spike must be detected");
    assert_eq!(r, Some(1), "R-SQL top-1");
    assert_eq!(h, Some(1), "H-SQL top-1");
}

#[test]
fn poor_sql_pipeline() {
    let (r, h, detected) = diagnose(AnomalyKind::PoorSql, 9200);
    assert!(detected);
    assert_eq!(r, Some(1));
    assert_eq!(h, Some(1));
}

#[test]
fn mdl_lock_pipeline() {
    let (r, h, detected) = diagnose(AnomalyKind::MdlLock, 9300);
    assert!(detected, "the MDL pile-up must be detected");
    assert!(r.is_some_and(|r| r <= 5), "R-SQL within top-5: {r:?}");
    assert_eq!(h, Some(1));
}

#[test]
fn row_lock_pipeline() {
    let (r, h, detected) = diagnose(AnomalyKind::RowLock, 9400);
    assert!(detected, "the row-lock convoy must be detected");
    assert!(r.is_some_and(|r| r <= 5), "R-SQL within top-5: {r:?}");
    assert_eq!(h, Some(1));
}

#[test]
fn hsqls_differ_from_rsqls_in_lock_cases() {
    // The paper's core distinction: for lock anomalies the direct causes
    // (victims) are not the root causes (the blocking statement).
    let cfg = ScenarioConfig::default().with_seed(9500);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::MdlLock);
    let case = materialize(&scenario, 600);
    let victims: Vec<_> =
        case.truth.hsqls.iter().filter(|h| !case.truth.rsqls.contains(h)).collect();
    assert!(
        !victims.is_empty(),
        "lock cases must have victim H-SQLs that are not R-SQLs"
    );
}
