//! Observer inertness: recording observability must not change a single
//! output byte.
//!
//! The full 16-case golden corpus runs as one fleet with the default
//! `NoopObserver`, then again under a fresh `RecordingObserver` at every
//! shards ∈ {1, 2, 4} × fanout ∈ {1, 4} combination. Each instance's
//! `Snapshot` JSON — scores as `f64` bit patterns — is compared
//! **byte-for-byte** between the two. A recording run that perturbs any
//! fold order, detector step, window cut, or diagnosis stage anywhere in
//! the pipeline fails this suite.
//!
//! Each recording run must also leave a *non-trivial* trace behind (spans
//! for every pipeline stage it exercised), so this suite cannot pass
//! vacuously with instrumentation compiled out of both paths.

mod common;

use common::{load_manifest, scenario_for, snapshot_of, GOLDEN_DELTA_S};
use pinsql::PinSqlConfig;
use pinsql_engine::{replay_diagnose, replay_diagnose_observed, FleetConfig, FleetEngine};
use pinsql_obs::{NoopObserver, RecordingObserver, Stage};

fn engine(shards: usize, fanout: usize) -> FleetEngine {
    FleetEngine::new(FleetConfig {
        delta_s: GOLDEN_DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout,
        shards,
        ..FleetConfig::default()
    })
}

#[test]
fn recording_observer_is_inert_on_every_golden_case() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();

    // Noop reference once: fleet outcomes are shard/fanout-invariant
    // (pinned by shard_equivalence), so one run stands for all combos.
    let reference = engine(1, 1).run_full(&scenarios);
    let reference_jsons: Vec<String> = manifest
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            let snap = snapshot_of(entry, &reference.cases[i], &reference.diagnoses[i]);
            serde_json::to_string_pretty(&snap).expect("serialize snapshot")
        })
        .collect();

    for shards in [1usize, 2, 4] {
        for fanout in [1usize, 4] {
            let obs = RecordingObserver::new();
            let run = engine(shards, fanout).run_full_observed(&scenarios, &obs);
            assert_eq!(run.cases.len(), manifest.len());

            for (i, entry) in manifest.iter().enumerate() {
                let snap = snapshot_of(entry, &run.cases[i], &run.diagnoses[i]);
                let json = serde_json::to_string_pretty(&snap).expect("serialize snapshot");
                assert_eq!(
                    json, reference_jsons[i],
                    "{}: recording run (shards {shards}, fanout {fanout}) diverged from noop",
                    entry.name
                );
            }

            // Health is part of the output contract too.
            assert_eq!(run.health, reference.health, "shards {shards}, fanout {fanout}");

            // The recording run must actually have recorded: one merge
            // span per shard, one diagnosis-stage span per instance, and
            // fold/detector activity everywhere.
            let reg = obs.registry();
            assert_eq!(reg.span_hist(Stage::IngestMerge).count(), shards as u64);
            for stage in [Stage::SessionEstimate, Stage::Hsql, Stage::Rsql] {
                assert_eq!(
                    reg.span_hist(stage).count(),
                    manifest.len() as u64,
                    "stage {} (shards {shards}, fanout {fanout})",
                    stage.name()
                );
            }
            assert_eq!(reg.span_hist(Stage::WindowCut).count(), manifest.len() as u64);
            assert!(reg.span_hist(Stage::CellFold).count() > 0);
            assert!(reg.span_hist(Stage::DetectorStep).count() > 0);
            // Lanes: main + one per shard + one per diagnosis.
            assert_eq!(obs.lanes().len(), 1 + shards + manifest.len());
        }
    }
}

#[test]
fn observed_replay_matches_unobserved_replay() {
    // The single-instance replay path, same contract: the observer only
    // watches. Two corpus entries cover a detected spike and a lock case.
    let manifest = load_manifest();
    for entry in manifest.iter().filter(|e| e.kind == "business_spike" || e.kind == "mdl_lock").take(2)
    {
        let scenario = scenario_for(entry);
        let cfg = PinSqlConfig::default();
        let (lc_a, d_a) = replay_diagnose(&scenario, GOLDEN_DELTA_S, &cfg);
        let obs = RecordingObserver::new();
        let (lc_b, d_b) = replay_diagnose_observed(&scenario, GOLDEN_DELTA_S, &cfg, &obs);

        let a = serde_json::to_string_pretty(&snapshot_of(entry, &lc_a, &d_a)).unwrap();
        let b = serde_json::to_string_pretty(&snapshot_of(entry, &lc_b, &d_b)).unwrap();
        assert_eq!(a, b, "{}: observed replay diverged", entry.name);
        assert!(obs.registry().span_hist(Stage::CellFold).count() > 0);

        // Explicitly passing the noop observer is the unobserved path.
        let (lc_c, d_c) = replay_diagnose_observed(&scenario, GOLDEN_DELTA_S, &cfg, &NoopObserver);
        let c = serde_json::to_string_pretty(&snapshot_of(entry, &lc_c, &d_c)).unwrap();
        assert_eq!(a, c, "{}: noop-observed replay diverged", entry.name);
    }
}
