//! Negative (no-anomaly) cases: a clean workload must not trip the
//! detector, carries no ground truth, and — the false-positive guard —
//! PinSQL must not *assert* any R-SQL on it at default thresholds, even
//! though the evaluation-only full ranking still exists.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_scenario::{
    generate_base, inject_none, materialize, materialize_with, PerturbConfig, ScenarioConfig,
};

fn negative_case(seed: u64) -> pinsql_scenario::LabeledCase {
    let cfg = ScenarioConfig::default().with_seed(seed);
    let base = generate_base(&cfg);
    let scenario = inject_none(&base, &cfg);
    materialize(&scenario, 600)
}

#[test]
fn clean_workloads_are_not_detected_and_report_nothing() {
    for seed in [9600u64, 9700, 9800] {
        let lc = negative_case(seed);
        assert!(lc.is_negative());
        assert!(
            !lc.detected,
            "seed {seed}: a clean workload must not trip the detector"
        );
        assert!(lc.truth.rsqls.is_empty(), "seed {seed}: negatives have no R-SQL truth");
        assert!(lc.truth.hsqls.is_empty(), "seed {seed}: negatives have no H-SQL truth");

        // Even when forced through the pipeline (production would stop at
        // the detector), nothing gets asserted as a root cause.
        let d = PinSql::new(PinSqlConfig::default()).diagnose(
            &lc.case,
            &lc.window,
            &lc.history,
            lc.minutes_origin,
        );
        assert!(
            d.reported_rsqls.is_empty(),
            "seed {seed}: asserted R-SQLs on a no-anomaly case: {:?}",
            d.reported_rsqls
        );
        assert!(d.rsqls.iter().all(|r| r.score.is_finite()));
        assert!(d.hsqls.iter().all(|r| r.score.is_finite()));
    }
}

#[test]
fn degraded_negative_case_stays_quiet_and_finite() {
    // A chaotic negative: heavy telemetry degradation on a clean workload.
    // Blanked seconds and dropped records must not fabricate an anomaly
    // assertion, and every score must stay finite.
    let cfg = ScenarioConfig::default().with_seed(9650);
    let base = generate_base(&cfg);
    let scenario = inject_none(&base, &cfg);
    let lc = materialize_with(&scenario, 600, Some(&PerturbConfig::at_intensity(965, 1.0)));
    assert!(lc.is_negative());
    assert!(lc.truth.rsqls.is_empty());
    assert!(lc.window.window_len() > 0, "window must stay usable");

    let d = PinSql::new(PinSqlConfig::default()).diagnose(
        &lc.case,
        &lc.window,
        &lc.history,
        lc.minutes_origin,
    );
    // Degradation can make the *detector* fire (a blanked stretch looks
    // like a level shift), so only the end-to-end assertion is checked:
    // nothing non-finite anywhere, and the reported set stays within the
    // ranking.
    assert!(d.rsqls.iter().all(|r| r.score.is_finite()));
    assert!(d.hsqls.iter().all(|r| r.score.is_finite()));
    assert!(d.reported_rsqls.len() <= d.rsqls.len());
}
