//! Wire-format hardening for the PCTL control plane.
//!
//! Control frames cross a trust boundary — the agent decodes whatever the
//! server (or an attacker on the wire) sends, and vice versa. This suite
//! pins that every malformed shape yields a *typed* [`WireError`] — never
//! a panic, never a silently wrong message:
//!
//! * truncation at every byte offset of a representative message and
//!   response frame;
//! * wrong magic, future version, unknown frame tags;
//! * corrupted inner tags (presence flags, kernel kind, daemon state);
//! * semantic garbage (zero shard counts, non-UTF-8 reject reasons,
//!   inconsistent rollup trees, non-ascending region ids);
//! * trailing bytes both inside the body section and after the frame.

use pinsql::{ConfigEpoch, PinSqlDelta};
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{
    ControlMsg, ControlResp, DaemonState, FleetDelta, CONTROL_MAGIC, CONTROL_VERSION,
};
use pinsql_obs::{FleetRollup, HealthRollup, RegionRollup};
use pinsql_timeseries::WireError;

/// A push with every knob present — exercises every optional-field branch
/// of the delta codec in one frame.
fn full_push_frame() -> Vec<u8> {
    ControlMsg::ConfigPush {
        epoch: ConfigEpoch(7),
        delta: FleetDelta {
            shards: Some(4),
            fanout: Some(2),
            kernel: Some(KernelKind::Reference),
            delta_s: Some(480),
            regions: Some(3),
            pinsql: PinSqlDelta {
                tau: Some(0.7),
                kc: Some(6),
                tau_c: Some(0.9),
                tukey_k: Some(2.0),
                rsql_score_min: Some(0.4),
                parallelism: Some(2),
                cut: Some(CutKind::Incremental),
            },
        },
    }
    .to_bytes()
}

fn region(id: u32, events: u64) -> RegionRollup {
    RegionRollup {
        region: id,
        rollup: HealthRollup {
            instances: 2,
            events_total: events,
            queries_total: events / 2,
            cases_opened_total: 2,
            watermark_min: 600,
            ..HealthRollup::default()
        },
    }
}

/// A two-region tree whose total really is the merge of its regions.
fn consistent_tree() -> FleetRollup {
    let regions = vec![region(0, 1000), region(1, 2500)];
    let mut total = HealthRollup::default();
    for r in &regions {
        total.merge(&r.rollup);
    }
    FleetRollup { regions, total }
}

fn rollup_frame() -> Vec<u8> {
    ControlResp::Rollup { epoch: ConfigEpoch(7), rollup: consistent_tree() }.to_bytes()
}

#[test]
fn frames_round_trip_through_untrusted_decode() {
    let msg = ControlMsg::from_bytes(&full_push_frame()).expect("well-formed message");
    assert!(matches!(msg, ControlMsg::ConfigPush { epoch: ConfigEpoch(7), .. }));
    let resp = ControlResp::from_bytes(&rollup_frame()).expect("well-formed response");
    match resp {
        ControlResp::Rollup { epoch, rollup } => {
            assert_eq!(epoch, ConfigEpoch(7));
            assert_eq!(rollup.instances(), 4);
            assert!(rollup.is_consistent());
        }
        other => panic!("expected a rollup, got {other:?}"),
    }
}

#[test]
fn every_truncation_of_a_message_frame_is_a_typed_error() {
    let bytes = full_push_frame();
    for cut in 0..bytes.len() {
        match ControlMsg::from_bytes(&bytes[..cut]) {
            Ok(msg) => panic!("truncation at {cut}/{} decoded as {msg:?}", bytes.len()),
            Err(e) => assert!(
                matches!(e, WireError::Truncated { .. }),
                "truncation at {cut}: unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn every_truncation_of_a_response_frame_is_a_typed_error() {
    let bytes = rollup_frame();
    for cut in 0..bytes.len() {
        match ControlResp::from_bytes(&bytes[..cut]) {
            Ok(resp) => panic!("truncation at {cut}/{} decoded as {resp:?}", bytes.len()),
            Err(e) => assert!(
                matches!(e, WireError::Truncated { .. }),
                "truncation at {cut}: unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn corrupt_headers_yield_specific_typed_errors() {
    let bytes = full_push_frame();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'Q';
    assert!(matches!(
        ControlMsg::from_bytes(&wrong_magic),
        Err(WireError::BadMagic { expected: CONTROL_MAGIC, .. })
    ));

    let mut future = bytes.clone();
    future[4] = 0xFF; // little-endian low byte: version 0xFF > 1
    assert!(matches!(
        ControlMsg::from_bytes(&future),
        Err(WireError::FutureVersion { supported: CONTROL_VERSION, .. })
    ));

    let mut bad_msg_tag = bytes.clone();
    bad_msg_tag[6] = 0xEE;
    assert!(matches!(
        ControlMsg::from_bytes(&bad_msg_tag),
        Err(WireError::BadTag { what: "control message tag", value: 0xEE })
    ));

    let mut bad_resp_tag = rollup_frame();
    bad_resp_tag[6] = 0xEE;
    assert!(matches!(
        ControlResp::from_bytes(&bad_resp_tag),
        Err(WireError::BadTag { what: "control response tag", value: 0xEE })
    ));
}

/// Frame layout: magic 0..4, version 4..6, tag 6, section length 7..15,
/// body from 15. The push body is epoch (8 bytes), then the delta's
/// presence-flagged fields in declaration order.
#[test]
fn corrupt_push_bodies_yield_specific_typed_errors() {
    let bytes = full_push_frame();

    // Byte 23 is the `shards` presence flag: a bool must be 0 or 1.
    let mut bad_flag = bytes.clone();
    bad_flag[23] = 7;
    assert!(matches!(
        ControlMsg::from_bytes(&bad_flag),
        Err(WireError::BadTag { what: "bool", value: 7 })
    ));

    // Bytes 24..32 are the shard count: zero shards is semantic garbage.
    let mut zero_shards = bytes.clone();
    zero_shards[24..32].fill(0);
    assert!(matches!(
        ControlMsg::from_bytes(&zero_shards),
        Err(WireError::Mismatch { what: "delta shards", .. })
    ));

    // Byte 42 is the kernel tag (after shards and fanout at 9 bytes each,
    // plus the kernel presence flag).
    let mut bad_kernel = bytes.clone();
    bad_kernel[42] = 9;
    assert!(matches!(
        ControlMsg::from_bytes(&bad_kernel),
        Err(WireError::BadTag { what: "kernel kind", value: 9 })
    ));
}

#[test]
fn corrupt_response_bodies_yield_specific_typed_errors() {
    // Ack body: epoch 15..23, daemon-state tag at 23.
    let ack =
        ControlResp::Ack { epoch: ConfigEpoch(3), state: DaemonState::Running }.to_bytes();
    let mut bad_state = ack.clone();
    bad_state[23] = 9;
    assert!(matches!(
        ControlResp::from_bytes(&bad_state),
        Err(WireError::BadTag { what: "daemon state", value: 9 })
    ));

    // Reject body: epoch 15..23, reason length 23..31, reason bytes from
    // 31. 0xFF is never valid UTF-8.
    let reject = ControlResp::Reject { epoch: ConfigEpoch(3), reason: "stale epoch".into() }
        .to_bytes();
    let mut bad_utf8 = reject.clone();
    bad_utf8[31] = 0xFF;
    assert!(matches!(
        ControlResp::from_bytes(&bad_utf8),
        Err(WireError::Mismatch { what: "utf-8 string", .. })
    ));
}

/// Rollup trees are validated semantically on decode: region ids must
/// ascend strictly and the total must equal the merge of the regions.
/// The encoder writes whatever it is handed, so a hostile peer is modeled
/// by encoding invalid trees directly.
#[test]
fn invalid_rollup_trees_are_rejected_on_decode() {
    let mut descending = consistent_tree();
    descending.regions.swap(0, 1);
    let frame = ControlResp::Rollup { epoch: ConfigEpoch(1), rollup: descending }.to_bytes();
    assert!(matches!(
        ControlResp::from_bytes(&frame),
        Err(WireError::Mismatch { what: "rollup regions", .. })
    ));

    let mut inconsistent = consistent_tree();
    inconsistent.total.events_total += 1;
    let frame = ControlResp::Rollup { epoch: ConfigEpoch(1), rollup: inconsistent }.to_bytes();
    assert!(matches!(
        ControlResp::from_bytes(&frame),
        Err(WireError::Mismatch { what: "rollup tree", .. })
    ));
}

#[test]
fn trailing_bytes_inside_and_after_the_frame_are_typed_errors() {
    // Garbage after a complete frame: the outer reader must drain clean.
    let mut after_frame = ControlMsg::Restart.to_bytes();
    after_frame.extend_from_slice(b"???");
    assert!(matches!(
        ControlMsg::from_bytes(&after_frame),
        Err(WireError::TrailingBytes { what: "control frame", .. })
    ));

    // Garbage *inside* the body section (section length patched to cover
    // it): the body reader must drain clean too.
    let mut inside_body = ControlMsg::Drain { to_second: 600 }.to_bytes();
    inside_body.extend_from_slice(b"???");
    let len = u64::from_le_bytes(inside_body[7..15].try_into().unwrap()) + 3;
    inside_body[7..15].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        ControlMsg::from_bytes(&inside_body),
        Err(WireError::TrailingBytes { what: "control message body", .. })
    ));

    let mut resp_body = ControlResp::Ack { epoch: ConfigEpoch(0), state: DaemonState::Stopped }
        .to_bytes();
    resp_body.extend_from_slice(b"???");
    let len = u64::from_le_bytes(resp_body[7..15].try_into().unwrap()) + 3;
    resp_body[7..15].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        ControlResp::from_bytes(&resp_body),
        Err(WireError::TrailingBytes { what: "control response body", .. })
    ));
}
