//! Daemon equivalence: a resident fleet daemon that is reconfigured and
//! restarted mid-stream is behaviorally invisible.
//!
//! All 16 manifest scenarios run through a [`FleetServer`]-steered
//! [`FleetDaemon`] that starts under a deliberately *wrong* config
//! (perturbed look-back, thresholds, kernel, shard count), ingests to an
//! event-time watermark, receives a versioned config push restoring the
//! golden config, keeps ingesting, survives a graceful restart
//! mid-anomaly, and is then stopped — across the shared matrix (shards
//! {1, 2, 4} × fanout {1, 4} × both kernels). Every case's `Snapshot`
//! JSON must match the uninterrupted batch pipeline **byte-for-byte**:
//! the daemon's history under the final config is indistinguishable from
//! a cold start that never saw the perturbed config at all.
//!
//! The suite also pins the [`FleetReport`] wire contract (config epoch,
//! per-region rollup counts, serde round-trip) and the epoch algebra
//! (stale or replayed pushes are rejected whole, over real PCTL frames).

mod common;

use common::{
    assert_fleet_matches_batch, batch_reference_jsons, golden_fleet_config, load_manifest,
    scenario_for, GOLDEN_DELTA_S,
};
use pinsql::{ConfigEpoch, PinSqlConfig, PinSqlDelta};
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{
    ControlMsg, ControlResp, FleetConfig, FleetDaemon, FleetDelta, FleetReport, FleetServer,
};

/// A spawn config that disagrees with the golden config on every knob a
/// [`FleetDelta`] can touch — the push must erase all of it.
fn perturbed_config(golden: &FleetConfig) -> FleetConfig {
    let other_kernel = match golden.kernel {
        KernelKind::Fast => KernelKind::Reference,
        KernelKind::Reference => KernelKind::Fast,
    };
    let other_cut = match golden.pinsql.cut {
        CutKind::Incremental => CutKind::Reference,
        CutKind::Reference => CutKind::Incremental,
    };
    FleetConfig {
        delta_s: 120,
        pinsql: PinSqlConfig {
            tau: 0.5,
            rsql_score_min: 0.9,
            cut: other_cut,
            ..PinSqlConfig::default()
        },
        fanout: golden.fanout % 2 + 1,
        shards: 3,
        kernel: other_kernel,
        regions: 1,
    }
}

/// The delta that turns [`perturbed_config`] back into `golden` (plus a
/// three-region rollup map, which is purely observational).
fn restoring_delta(golden: &FleetConfig) -> FleetDelta {
    let defaults = PinSqlConfig::default();
    FleetDelta {
        shards: Some(golden.shards),
        fanout: Some(golden.fanout),
        kernel: Some(golden.kernel),
        delta_s: Some(golden.delta_s),
        regions: Some(3),
        pinsql: PinSqlDelta {
            tau: Some(defaults.tau),
            rsql_score_min: Some(defaults.rsql_score_min),
            cut: Some(golden.pinsql.cut),
            ..PinSqlDelta::default()
        },
    }
}

#[test]
fn reconfigured_restarted_daemon_matches_batch_on_every_golden_case() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let batch_jsons = batch_reference_jsons(&manifest);

    assert_fleet_matches_batch(&manifest, &scenarios, &batch_jsons, "daemon run", |p, sc| {
        let golden = golden_fleet_config(p);
        let mut server = FleetServer::start(perturbed_config(&golden), sc);

        // Ingest under the wrong config, then push the correction: the
        // quiesce-at-watermark + snapshot handoff must leave no trace of
        // the perturbed thresholds, look-back, kernel, or shard layout.
        server.advance_to(600);
        let epoch = server.push_config(restoring_delta(&golden)).expect("config push acked");
        assert_eq!(epoch, ConfigEpoch(1), "{}: first push mints epoch 1", p.label());

        // Keep ingesting into the anomaly window, then restart with
        // detector segments open — the crash drill mid-anomaly.
        server.advance_to(800);
        server.restart().expect("graceful restart acked");

        let run = server.stop().expect("drains and stops");
        assert_eq!(run.report.config_epoch, 1, "{}: report carries the epoch", p.label());
        assert_eq!(run.report.shards, p.shards, "{}: final shard layout", p.label());
        run
    });
}

/// The report's rollup tree is exact: region counts partition the fleet
/// and re-aggregate to the fleet totals, and the whole report survives a
/// serde round-trip byte-for-byte.
#[test]
fn fleet_report_rollup_counts_and_serde_round_trip() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(5).map(scenario_for).collect();

    let cfg = FleetConfig {
        delta_s: GOLDEN_DELTA_S,
        shards: 2,
        fanout: 1,
        regions: 3,
        ..FleetConfig::default()
    };
    let run = FleetServer::start(cfg, &scenarios).stop().expect("drains and stops");
    let report = &run.report;

    assert_eq!(report.config_epoch, 0, "no pushes: still the initial epoch");
    assert_eq!(report.rollup.regions.len(), 3, "one rollup per region");
    assert_eq!(report.rollup.instances(), 5, "rollup covers the whole fleet");
    assert!(report.rollup.is_consistent(), "region rollups re-aggregate to the fleet total");
    let per_region: u64 = report.rollup.regions.iter().map(|r| r.rollup.instances).sum();
    assert_eq!(per_region, report.rollup.total.instances, "regions partition the fleet");
    assert_eq!(report.rollup.total.events_total, report.events_total);

    let json = serde_json::to_string_pretty(report).expect("serialize report");
    let back: FleetReport = serde_json::from_str(&json).expect("deserialize report");
    let json2 = serde_json::to_string_pretty(&back).expect("re-serialize report");
    assert_eq!(json, json2, "FleetReport serde round-trip is byte-stable");
}

/// Epoch algebra over real PCTL frames: a push is accepted only under a
/// strictly greater epoch; stale and replayed pushes are rejected whole,
/// leaving the running config untouched.
#[test]
fn stale_and_replayed_pushes_are_rejected_over_the_wire() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(2).map(scenario_for).collect();
    let mut agent = FleetDaemon::spawn(
        FleetConfig { delta_s: GOLDEN_DELTA_S, shards: 2, ..FleetConfig::default() },
        &scenarios,
    );

    let push = |epoch: u64| {
        ControlMsg::ConfigPush {
            epoch: ConfigEpoch(epoch),
            delta: FleetDelta { kernel: Some(KernelKind::Reference), ..FleetDelta::default() },
        }
        .to_bytes()
    };
    let send = |agent: &mut FleetDaemon, frame: Vec<u8>| {
        ControlResp::from_bytes(&agent.handle_frame(&frame)).expect("well-formed response frame")
    };

    // Epoch 2 from the initial epoch 0: accepted.
    match send(&mut agent, push(2)) {
        ControlResp::Ack { epoch, .. } => assert_eq!(epoch, ConfigEpoch(2)),
        other => panic!("fresh epoch must ack, got {other:?}"),
    }
    assert_eq!(agent.config().kernel, KernelKind::Reference);

    // A replay of epoch 2 and a stale epoch 1: both rejected whole.
    for stale in [2u64, 1] {
        let frame = ControlMsg::ConfigPush {
            epoch: ConfigEpoch(stale),
            delta: FleetDelta { kernel: Some(KernelKind::Fast), ..FleetDelta::default() },
        }
        .to_bytes();
        match send(&mut agent, frame) {
            ControlResp::Reject { epoch, reason } => {
                assert_eq!(epoch, ConfigEpoch(2), "reject reports the running epoch");
                assert!(reason.contains("stale"), "reason names the failure: {reason}");
            }
            other => panic!("epoch {stale} must be rejected, got {other:?}"),
        }
        assert_eq!(
            agent.config().kernel,
            KernelKind::Reference,
            "a rejected push must not leak any part of its delta"
        );
        assert_eq!(agent.epoch(), ConfigEpoch(2));
    }
}
