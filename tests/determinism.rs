//! Reproducibility: the whole stack is seeded, so identical inputs must
//! produce byte-identical outputs — the property every experiment in
//! EXPERIMENTS.md relies on.

use pinsql::{PinSql, PinSqlConfig};
use pinsql_dbsim::run_open_loop;
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};

#[test]
fn simulation_is_deterministic() {
    let cfg = ScenarioConfig::default().with_seed(31);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    let a = run_open_loop(&scenario.workload, &scenario.sim, 0, 300);
    let b = run_open_loop(&scenario.workload, &scenario.sim, 0, 300);
    assert_eq!(a.log.len(), b.log.len());
    assert_eq!(a.metrics.active_session, b.metrics.active_session);
    assert_eq!(a.metrics.cpu_usage, b.metrics.cpu_usage);
    for (x, y) in a.log.iter().zip(&b.log) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.start_ms, y.start_ms);
        assert_eq!(x.response_ms, y.response_ms);
    }
}

#[test]
fn diagnosis_is_deterministic() {
    let cfg = ScenarioConfig::default().with_seed(32);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let case = materialize(&scenario, 600);
    let pinsql = PinSql::new(PinSqlConfig::default());
    let d1 = pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
    let d2 = pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin);
    assert_eq!(
        d1.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>(),
        d2.rsqls.iter().map(|r| (r.id, r.score.to_bits())).collect::<Vec<_>>()
    );
    assert_eq!(
        d1.hsqls.iter().map(|r| r.id).collect::<Vec<_>>(),
        d2.hsqls.iter().map(|r| r.id).collect::<Vec<_>>()
    );
    assert_eq!(d1.n_clusters, d2.n_clusters);
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        let cfg = ScenarioConfig::default().with_seed(seed);
        let base = generate_base(&cfg);
        let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
        run_open_loop(&scenario.workload, &scenario.sim, 0, 120).log.len()
    };
    // Not a strict requirement of correctness, but a seed collision across
    // the whole pipeline would make the case generator useless.
    assert_ne!(mk(100), mk(101));
}
