//! Backpressure: the ingest wire holds a hard memory bound under the
//! slowest legal consumer, and no fault or fold schedule changes the
//! final bytes.
//!
//! The policy is sized adversarially tight — one event-time second of
//! fleet traffic plus one batch — and the sink's pressure folds are
//! pushed to the last legal moment, so the source *must* stall on
//! credits to finish at all. The suite pins:
//!
//! * bounded memory — the sink's buffered high-water mark never exceeds
//!   `queue_capacity`, and the source's in-flight window never exceeds
//!   its credit grants;
//! * no loss, no reorder — the finished run is byte-identical to the
//!   batch reference on every case, stalls and folds included;
//! * monotone watermarks — no sink message ever moves time backwards;
//! * fault tolerance — a mid-frame tear on the data path and a severed
//!   ack path both resume cleanly on a fresh connection, replaying (or
//!   dropping) exactly the unacked window, still byte-identical.

mod common;

use common::{
    batch_reference_jsons, drive_loopback, golden_fleet_config, load_manifest, scenario_for,
    ManifestEntry, MatrixPoint,
};
use pinsql::TransportPolicy;
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{
    pipe_pair, plan_frames, run_source, serve_agent, EventFrame, FleetDaemon, FleetRun,
    IngestSink, SourcePlan,
};
use pinsql_scenario::{materialize_events, Scenario};
use pinsql_dbsim::TelemetryEvent;

const ADVANCE_EVERY_S: i64 = 1;
const BATCH_EVENTS: usize = 64;

fn point() -> MatrixPoint {
    MatrixPoint { shards: 2, fanout: 1, kernel: KernelKind::Fast, cut: CutKind::Incremental }
}

/// The four-scenario soak fixture: entries, scenarios, streams, and a
/// policy whose queue holds exactly one worst-case event-time second of
/// fleet traffic plus one batch — the tightest bound that stays live.
fn fixture() -> (Vec<ManifestEntry>, Vec<Scenario>, Vec<Vec<TelemetryEvent>>, TransportPolicy) {
    let manifest = load_manifest();
    let entries: Vec<_> = manifest.into_iter().take(4).collect();
    let scenarios: Vec<_> = entries.iter().map(scenario_for).collect();
    let streams: Vec<_> = scenarios.iter().map(|s| materialize_events(s, None)).collect();

    let mut per_second = std::collections::BTreeMap::<i64, usize>::new();
    for stream in &streams {
        for ev in stream {
            *per_second.entry((ev.time_ms() / 1000.0).floor() as i64).or_default() += 1;
        }
    }
    let busiest = per_second.values().copied().max().expect("streams are non-empty");
    let policy = TransportPolicy::default()
        .with_queue_capacity(busiest + BATCH_EVENTS)
        .with_batch_events(BATCH_EVENTS);
    policy.validate().expect("soak policy is valid");
    (entries, scenarios, streams, policy)
}

fn assert_matches_batch(entries: &[ManifestEntry], out: &FleetRun, what: &str) {
    let batch_jsons = batch_reference_jsons(entries);
    for (i, entry) in entries.iter().enumerate() {
        common::assert_case_matches_batch(
            entry,
            &batch_jsons[i],
            &out.cases[i],
            &out.diagnoses[i],
            what,
        );
    }
}

/// The soak: a sink whose pressure folds only fire with the buffer
/// completely full (the slowest legal consumer — all regular folds come
/// from the source's per-second `Advance` marks), a queue sized to one
/// busiest second plus one batch, and the full four-scenario stream.
#[test]
fn slow_consumer_soak_holds_the_memory_bound_and_the_bytes() {
    let (entries, scenarios, streams, policy) = fixture();
    let total_events: usize = streams.iter().map(Vec::len).sum();

    let mut plan = SourcePlan::new(plan_frames(&streams, &policy, ADVANCE_EVERY_S));
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(golden_fleet_config(point()), &scenarios), policy)
        .with_fold_threshold(policy.queue_capacity);

    let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, None);
    src.expect("source completes under the tight queue");
    agent.expect("agent clean close");
    assert!(plan.finished());
    assert!(sink.fin_received());

    // The memory bound, both ends of the wire.
    assert!(
        sink.peak_buffered() <= policy.queue_capacity,
        "sink buffered {} of a {}-event queue",
        sink.peak_buffered(),
        policy.queue_capacity
    );
    assert!(
        plan.stats.max_inflight_events <= policy.queue_capacity as u64,
        "in-flight window {} exceeded the credit bound {}",
        plan.stats.max_inflight_events,
        policy.queue_capacity
    );

    // The regulation actually happened: the stream is far larger than the
    // queue, so the source must have stalled on credits — and every
    // event still arrived exactly once, in order.
    assert!(total_events > 4 * policy.queue_capacity, "fixture must dwarf the queue");
    assert!(plan.stats.credit_stalls > 0, "a tight queue must stall the source");
    assert_eq!(plan.stats.events_sent, total_events as u64, "no loss, no duplicates");
    assert!(!plan.stats.watermark_regressed, "watermarks are monotone");
    assert!(plan.stats.last_watermark > i64::MIN, "folds actually advanced time");

    assert_matches_batch(&entries, &sink.finish(), "slow-consumer soak");
}

/// The fold schedule is invisible: an eager sink (fold at every
/// opportunity) and the lazy soak sink above produce byte-identical
/// runs from the same plan.
#[test]
fn fold_schedule_never_changes_the_bytes() {
    let (entries, scenarios, streams, policy) = fixture();
    let frames = plan_frames(&streams, &policy, ADVANCE_EVERY_S);

    let mut runs = Vec::new();
    for threshold in [1usize, policy.queue_capacity / 2] {
        let mut plan = SourcePlan::new(frames.clone());
        let mut sink =
            IngestSink::new(FleetDaemon::spawn_hollow(golden_fleet_config(point()), &scenarios), policy)
                .with_fold_threshold(threshold);
        let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, None);
        src.expect("source completes");
        agent.expect("agent clean close");
        runs.push(sink.finish());
    }
    for run in &runs {
        assert_matches_batch(&entries, run, "fold-schedule variant");
    }
}

/// Data-path tear under pressure: the source→sink stream dies mid-frame
/// a third of the way in; the resumed connection replays the unacked
/// window and the run stays byte-identical, still inside the memory
/// bound.
#[test]
fn torn_data_path_resumes_exactly_once() {
    let (entries, scenarios, streams, policy) = fixture();
    let frames = plan_frames(&streams, &policy, ADVANCE_EVERY_S);
    let framed_bytes: usize = frames.iter().map(|f| 4 + f.to_bytes().len()).sum();

    let mut plan = SourcePlan::new(frames);
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(golden_fleet_config(point()), &scenarios), policy)
        .with_fold_threshold(policy.queue_capacity);

    let (src, _agent) =
        drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, Some(framed_bytes / 3 + 2));
    assert!(src.is_err(), "the source must notice the cut");
    assert!(!plan.finished());

    let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, None);
    src.expect("resumed source completes");
    agent.expect("agent clean close");
    assert!(plan.finished());
    assert_eq!(plan.stats.resumes, 1);
    assert!(sink.peak_buffered() <= policy.queue_capacity, "the bound holds across the fault");

    assert_matches_batch(&entries, &sink.finish(), "torn-data-path run");
}

/// Ack-path severance: the sink keeps applying frames but its acks stop
/// arriving, so the source is left with an applied-but-unacked window.
/// The resume `Hello` advertises the sink's true position; the source
/// drops exactly the already-applied frames (`replays_skipped`) instead
/// of re-sending them, and the run stays byte-identical.
#[test]
fn severed_ack_path_drops_the_applied_window_on_resume() {
    let (entries, scenarios, streams, policy) = fixture();
    let mut plan = SourcePlan::new(plan_frames(&streams, &policy, ADVANCE_EVERY_S));
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(golden_fleet_config(point()), &scenarios), policy);

    // First connection: cut the *agent's* outbound direction mid-stream,
    // well past the hello. Every sink frame (hello, ack) encodes to the
    // same framed length, so a budget of N½ frames is guaranteed to land
    // mid-ack — the applied-but-unacked shape this test is about.
    let ack_framed = 4 + EventFrame::Ack { seq: 0, credits: 0, watermark: 0 }.to_bytes().len();
    {
        let (mut source_conn, mut agent_conn) = pipe_pair(policy.max_frame_bytes);
        agent_conn.cut_outbound_after(ack_framed * 16 + ack_framed / 2);
        let sink_ref = &mut sink;
        std::thread::scope(|s| {
            let agent = s.spawn(move || {
                let _ = serve_agent(&mut agent_conn, sink_ref);
            });
            let src = run_source(&mut source_conn, &mut plan);
            assert!(src.is_err(), "losing the ack path must kill the connection");
            drop(source_conn);
            agent.join().expect("agent thread");
        });
    }
    assert!(!plan.finished());

    let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, None);
    src.expect("resumed source completes");
    agent.expect("agent clean close");
    assert!(plan.finished());
    assert_eq!(plan.stats.resumes, 1);
    assert!(
        plan.stats.replays_skipped > 0,
        "the resume hello must spare the source the already-applied window"
    );

    assert_matches_batch(&entries, &sink.finish(), "severed-ack-path run");
}

/// The sink's duplicate discipline at the frame level: a replayed frame
/// below `next_seq` is re-acked without being applied — the buffer does
/// not grow, time does not move, and the ack carries the current state.
#[test]
fn duplicate_frames_re_ack_without_reapplying() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(1).map(scenario_for).collect();
    let policy =
        TransportPolicy::default().with_queue_capacity(128).with_batch_events(16);
    let single = MatrixPoint { shards: 1, ..point() };
    let mut sink = IngestSink::new(
        FleetDaemon::spawn_hollow(golden_fleet_config(single), &scenarios),
        policy,
    );

    let batch = EventFrame::Batch {
        seq: 1,
        instance: 0,
        events: vec![TelemetryEvent::Tick { second: 0 }, TelemetryEvent::Tick { second: 1 }],
    }
    .to_bytes();

    let first = sink.handle_event_frame(&batch).expect("fresh frame applies");
    let buffered = sink.buffered();
    assert_eq!(buffered, 2);

    // The exact same bytes again: a reconnect replay.
    let second = sink.handle_event_frame(&batch).expect("duplicate re-acks");
    assert_eq!(sink.buffered(), buffered, "a duplicate must not re-apply");
    match (
        EventFrame::from_bytes(&first).expect("ack decodes"),
        EventFrame::from_bytes(&second).expect("ack decodes"),
    ) {
        (EventFrame::Ack { seq: a, .. }, EventFrame::Ack { seq: b, watermark, .. }) => {
            assert_eq!(a, 1);
            assert_eq!(b, 1, "the re-ack confirms the same applied position");
            assert!(watermark >= i64::MIN);
        }
        other => panic!("expected two acks, got {other:?}"),
    }
}
