//! Shard equivalence: the fleet engine reproduces batch diagnoses
//! bit-for-bit on the full golden corpus at every shard count.
//!
//! All 16 manifest scenarios run as **one fleet** through
//! `FleetEngine::run_full` at shards ∈ {1, 2, 4} × fanout ∈ {1, 4} ×
//! kernel ∈ {fast, reference}, and each instance's `Snapshot` JSON is
//! compared **byte-for-byte** against the batch pipeline's output for the
//! same manifest entry. Scores are serialized as `f64` bit patterns, so a
//! single ULP of drift anywhere in the sharded ingest path — the
//! per-shard k-way merges, the chunked query-run folding, the compact
//! cell store, the selection-based detector kernels — fails this suite.

mod common;

use common::{batch_snapshot, load_manifest, scenario_for, snapshot_of, GOLDEN_DELTA_S};
use pinsql::PinSqlConfig;
use pinsql_detect::KernelKind;
use pinsql_engine::{FleetConfig, FleetEngine};

#[test]
fn sharded_fleet_matches_batch_on_every_golden_case() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();

    // Batch reference once per entry; the batch path's own parallelism
    // invariance is pinned by golden_corpus.rs.
    let batch_jsons: Vec<String> = manifest
        .iter()
        .map(|entry| {
            let (snap, _) = batch_snapshot(entry, 1);
            serde_json::to_string_pretty(&snap).expect("serialize snapshot")
        })
        .collect();

    for shards in [1usize, 2, 4] {
        for fanout in [1usize, 4] {
            for kernel in [KernelKind::Fast, KernelKind::Reference] {
                let engine = FleetEngine::new(FleetConfig {
                    delta_s: GOLDEN_DELTA_S,
                    pinsql: PinSqlConfig::default(),
                    fanout,
                    shards,
                    kernel,
                });
                let run = engine.run_full(&scenarios);
                assert_eq!(run.report.shards, shards);
                assert_eq!(run.cases.len(), manifest.len());

                for (i, entry) in manifest.iter().enumerate() {
                    let snap = snapshot_of(entry, &run.cases[i], &run.diagnoses[i]);
                    let json = serde_json::to_string_pretty(&snap).expect("serialize snapshot");
                    assert_eq!(
                        json,
                        batch_jsons[i],
                        "{}: fleet run (shards {shards}, fanout {fanout}, kernel {}) \
                         diverged from batch",
                        entry.name,
                        kernel.label()
                    );
                }
            }
        }
    }
}
