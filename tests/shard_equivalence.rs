//! Shard equivalence: the fleet engine reproduces batch diagnoses
//! bit-for-bit on the full golden corpus at every shard count.
//!
//! All 16 manifest scenarios run as **one fleet** through
//! `FleetEngine::run_full` across the shared matrix (shards {1, 2, 4} ×
//! fanout {1, 4} × both kernels — see `common::matrix_points`), and each
//! instance's `Snapshot` JSON is compared **byte-for-byte** against the
//! batch pipeline's output for the same manifest entry. Scores are
//! serialized as `f64` bit patterns, so a single ULP of drift anywhere in
//! the sharded ingest path — the per-shard k-way merges, the chunked
//! query-run folding, the compact cell store, the selection-based
//! detector kernels — fails this suite.

mod common;

use common::{
    assert_fleet_matches_batch, batch_reference_jsons, golden_fleet_config, load_manifest,
    scenario_for,
};
use pinsql_engine::FleetEngine;

#[test]
fn sharded_fleet_matches_batch_on_every_golden_case() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let batch_jsons = batch_reference_jsons(&manifest);

    assert_fleet_matches_batch(&manifest, &scenarios, &batch_jsons, "fleet run", |p, sc| {
        let run = FleetEngine::new(golden_fleet_config(p)).run_full(sc);
        assert_eq!(run.report.shards, p.shards);
        run
    });
}
