//! `HealthSnapshot` invariants under chaos-degraded telemetry.
//!
//! A health snapshot is a plain read of state the pipeline already keeps,
//! so it must (a) never perturb outcomes, (b) keep its lifetime counters
//! monotone over any stream — including one with drops, duplicates,
//! jitter, clock skew, reordering, and metric blackouts — and (c) keep
//! its queue depths inside the retention bound at every instant. This
//! suite drives perturbed streams through `OnlineInstance` and checks all
//! three at high snapshot frequency.

mod common;

use common::{load_manifest, scenario_for};
use pinsql::PinSqlConfig;
use pinsql_engine::OnlineInstance;
use pinsql_obs::HealthSnapshot;
use pinsql_scenario::{
    generate_base, inject, materialize_events, AnomalyKind, PerturbConfig, Scenario,
    ScenarioConfig,
};
use std::time::Instant;

const DELTA_S: i64 = 240;

fn chaos_scenario(seed: u64, kind: AnomalyKind) -> Scenario {
    let cfg = ScenarioConfig::default().with_seed(seed).with_businesses(6).with_window(
        420,
        240,
        330,
    );
    let base = generate_base(&cfg);
    inject(&base, &cfg, kind)
}

/// Asserts every lifetime counter of `b` is at least `a`'s.
fn assert_monotone(a: &HealthSnapshot, b: &HealthSnapshot, ctx: &str) {
    assert!(b.events_ingested >= a.events_ingested, "{ctx}: events");
    assert!(b.queries_ingested >= a.queries_ingested, "{ctx}: queries");
    assert!(b.malformed_dropped >= a.malformed_dropped, "{ctx}: malformed");
    assert!(b.late_dropped >= a.late_dropped, "{ctx}: late");
    assert!(b.cells_folded >= a.cells_folded, "{ctx}: cells");
    assert!(b.retention_evictions >= a.retention_evictions, "{ctx}: evictions");
    assert!(b.history_minutes >= a.history_minutes, "{ctx}: history minutes");
    assert!(b.cases_opened >= a.cases_opened, "{ctx}: cases opened");
    assert!(b.detector_samples >= a.detector_samples, "{ctx}: detector samples");
    assert!(b.features_closed >= a.features_closed, "{ctx}: features");
    assert!(b.watermark >= a.watermark, "{ctx}: watermark");
}

/// Asserts queue depths respect the instance's retention sizing.
fn assert_bounded(h: &HealthSnapshot, retention: i64, ctx: &str) {
    let bound = (retention + 1) as usize;
    assert!(h.cell_seconds <= bound, "{ctx}: cell_seconds {} > {bound}", h.cell_seconds);
    assert!(h.metric_seconds <= bound, "{ctx}: metric_seconds {} > {bound}", h.metric_seconds);
    assert!(
        h.records_resident as u64 <= h.queries_ingested,
        "{ctx}: resident records exceed ingested queries"
    );
    assert!(
        h.cells_folded >= h.cell_seconds as u64,
        "{ctx}: resident cells exceed lifetime folds"
    );
    assert!(h.open_segments <= 6, "{ctx}: more open segments than watched metrics");
}

#[test]
fn health_invariants_hold_under_chaos_streams() {
    // Three intensities: clean, moderately degraded, heavily degraded.
    let chaos: [Option<PerturbConfig>; 3] = [
        None,
        Some(PerturbConfig::at_intensity(501, 0.4)),
        Some(PerturbConfig::at_intensity(502, 0.9)),
    ];
    for (ci, perturb) in chaos.iter().enumerate() {
        let scenario = chaos_scenario(130 + ci as u64, AnomalyKind::BusinessSpike);
        let retention = scenario.cfg.window_s + 120;
        let events = materialize_events(&scenario, perturb.as_ref());
        assert!(!events.is_empty());

        let mut inst = OnlineInstance::new(&scenario, DELTA_S);
        let mut prev = inst.health_snapshot();
        assert_eq!(prev.events_ingested, 0);
        assert_eq!(prev.watermark, i64::MIN, "pre-ingest watermark sentinel");

        for (i, ev) in events.into_iter().enumerate() {
            inst.ingest(ev);
            if i % 256 == 0 {
                let h = inst.health_snapshot();
                let ctx = format!("chaos {ci} event {i}");
                assert_monotone(&prev, &h, &ctx);
                assert_bounded(&h, retention, &ctx);
                assert_eq!(h, inst.health_snapshot(), "{ctx}: snapshot must be a pure read");
                prev = h;
            }
        }

        let fin = inst.health_snapshot();
        assert_monotone(&prev, &fin, &format!("chaos {ci} final"));
        assert!(fin.queries_ingested > 0);
        assert!(fin.cells_folded > 0);
        assert!(fin.templates_tracked > 0);
        assert!(fin.detector_samples > 0);
        if let Some(p) = perturb {
            assert!(p.drop_prob > 0.0);
            // Heavy jitter + skew push some records behind the horizon or
            // out of finite range only occasionally; what we require is
            // that the degraded stream still flowed.
            assert!(fin.events_ingested > 0);
        }
        // The case must still close after all that snapshotting.
        let lc = inst.close_case();
        assert!(!lc.case.templates.is_empty());
    }
}

#[test]
fn snapshots_mid_ingest_are_inert_and_cheap() {
    let scenario = chaos_scenario(140, AnomalyKind::RowLock);
    let perturb = PerturbConfig::at_intensity(503, 0.7);
    let events = materialize_events(&scenario, Some(&perturb));

    // Reference run: no snapshots at all.
    let mut plain = OnlineInstance::new(&scenario, DELTA_S);
    plain.ingest_stream(events.clone());

    // Snapshot-heavy run over the identical stream.
    let mut watched = OnlineInstance::new(&scenario, DELTA_S);
    let mut snap_time = std::time::Duration::ZERO;
    let mut snaps = 0u32;
    for (i, ev) in events.into_iter().enumerate() {
        watched.ingest(ev);
        if i % 64 == 0 {
            let t = Instant::now();
            let h = watched.health_snapshot();
            snap_time += t.elapsed();
            snaps += 1;
            std::hint::black_box(&h);
        }
    }
    assert_eq!(plain.ingest_stats(), watched.ingest_stats());
    assert_eq!(plain.health_snapshot(), watched.health_snapshot());

    let plain_lc = plain.close_case();
    let watched_lc = watched.close_case();
    assert_eq!(plain_lc.window, watched_lc.window);
    assert_eq!(plain_lc.case.records, watched_lc.case.records);
    assert_eq!(plain_lc.anomaly_type, watched_lc.anomaly_type);

    // "Cheap" with a wide CI margin: a snapshot is a handful of integer
    // reads, so even 1 ms mean would signal an accidental scan or clone
    // of retained data.
    let mean = snap_time / snaps.max(1);
    assert!(
        mean < std::time::Duration::from_millis(1),
        "health_snapshot mean {mean:?} over {snaps} snapshots — no longer a cheap read"
    );
}

#[test]
fn fleet_health_rollup_matches_instance_truth() {
    // Golden-corpus fleet: the roll-up's totals must equal the sum of the
    // per-instance snapshots it carries, and every instance must be
    // present in id order.
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(4).map(scenario_for).collect();
    let engine = pinsql_engine::FleetEngine::new(pinsql_engine::FleetConfig {
        delta_s: common::GOLDEN_DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout: 2,
        shards: 2,
        ..pinsql_engine::FleetConfig::default()
    });
    let run = engine.run_full(&scenarios);
    let h = &run.health;
    assert_eq!(h.instances.len(), scenarios.len());
    assert_eq!(h.events_total, run.report.events_total);
    assert_eq!(
        h.events_total,
        h.instances.iter().map(|i| i.events_ingested).sum::<u64>()
    );
    assert_eq!(
        h.queries_total,
        h.instances.iter().map(|i| i.queries_ingested).sum::<u64>()
    );
    assert_eq!(
        h.max_records_resident,
        h.instances.iter().map(|i| i.records_resident).max().unwrap()
    );
    for (i, inst) in h.instances.iter().enumerate() {
        assert!(inst.events_ingested > 0, "instance {i}");
        assert!(inst.templates_tracked > 0, "instance {i}");
        // Snapshots are taken at close: the watermark reached the end of
        // the simulated window.
        assert!(inst.watermark >= scenarios[i].cfg.window_s, "instance {i}");
    }
    // Roll-up must serialize for the fleet bench artifact.
    let json = serde_json::to_string(h).unwrap();
    assert!(json.contains("events_total"));
}
