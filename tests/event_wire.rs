//! Wire-format hardening for the `PEVT` ingest frames.
//!
//! A golden frame blob lives at `tests/golden/event_frame.bin`
//! (self-blessing on first run; `PINSQL_BLESS=1` regenerates after an
//! intentional format change). The frame is built from hardcoded
//! events — no scenario, no RNG — so the bytes are a pure function of
//! the codec. Against it this suite pins:
//!
//! * byte-stability — today's encoder reproduces the committed blob
//!   exactly, so any accidental wire-format change fails loudly;
//! * typed failure on *every* malformed shape — truncation at each byte,
//!   wrong magic, future version, unknown frame and event tags, trailing
//!   garbage inside and after the body section, absurd batch lengths,
//!   and a deterministic mutation sweep — never a panic.

mod common;

use pinsql_dbsim::{probe::ProbeSample, MetricsSample, QueryRecord, TelemetryEvent};
use pinsql_engine::{EventFrame, EVENT_HEADER_LEN, EVENT_MAGIC, EVENT_VERSION};
use pinsql_timeseries::{WireError, WireWriter};
use pinsql_workload::SpecId;

/// The canonical batch: one of each event variant, every field at a
/// value whose encoding exercises both zero and non-trivial bytes.
fn golden_events() -> Vec<TelemetryEvent> {
    vec![
        TelemetryEvent::Tick { second: 41 },
        TelemetryEvent::Query(QueryRecord {
            spec: SpecId(7),
            start_ms: 41_250.5,
            response_ms: 88.25,
            examined_rows: 42,
        }),
        TelemetryEvent::Metrics(Box::new(MetricsSample {
            second: 41,
            active_session: 3.0,
            cpu_usage: 0.5,
            iops_usage: 0.25,
            row_lock_waits: 0.0,
            mdl_waits: 1.0,
            qps: 9.0,
            probes: vec![ProbeSample {
                second: 41,
                active_sessions: 3,
                true_instant_ms: 41_400.0,
            }],
        })),
    ]
}

fn golden_frame() -> EventFrame {
    EventFrame::Batch { seq: 3, instance: 2, events: golden_events() }
}

#[test]
fn golden_frame_is_byte_stable_and_round_trips() {
    let frame = golden_frame();
    let bytes = frame.to_bytes();
    assert_eq!(&bytes[..4], &EVENT_MAGIC);
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), EVENT_VERSION);

    let path = common::golden_dir().join("event_frame.bin");
    let bless = std::env::var_os("PINSQL_BLESS").is_some();
    if bless || !path.exists() {
        std::fs::write(&path, &bytes).expect("write golden event frame");
    }
    let committed = std::fs::read(&path).expect("read golden event frame");
    assert_eq!(
        committed, bytes,
        "PEVT wire bytes changed; if intentional, bump EVENT_VERSION and \
         regenerate with PINSQL_BLESS=1"
    );

    let back = EventFrame::from_bytes(&committed).expect("golden frame decodes");
    assert_eq!(back, frame, "golden frame round-trips exactly");
}

#[test]
fn every_sink_and_source_frame_round_trips() {
    let frames = [
        EventFrame::Hello { next_seq: 1, credits: 8192, watermark: i64::MIN },
        EventFrame::Batch { seq: 1, instance: 0, events: golden_events() },
        EventFrame::Batch { seq: 2, instance: u32::MAX, events: Vec::new() },
        EventFrame::Advance { seq: 3, boundary_s: -120 },
        EventFrame::Fin { seq: u64::MAX },
        EventFrame::Ack { seq: 9, credits: 0, watermark: 1200 },
    ];
    for frame in frames {
        let bytes = frame.to_bytes();
        assert_eq!(
            EventFrame::from_bytes(&bytes).unwrap(),
            frame,
            "round trip failed for {frame:?}"
        );
    }
}

#[test]
fn every_truncation_yields_a_typed_error() {
    let bytes = golden_frame().to_bytes();
    for cut in 0..bytes.len() {
        match EventFrame::from_bytes(&bytes[..cut]) {
            Ok(f) => panic!("truncation at {cut}/{} decoded to {f:?}", bytes.len()),
            Err(e) => assert!(
                matches!(e, WireError::Truncated { .. } | WireError::BadMagic { .. }),
                "truncation at {cut}: unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn corrupt_headers_yield_specific_typed_errors() {
    let bytes = golden_frame().to_bytes();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'Q';
    assert!(matches!(
        EventFrame::from_bytes(&wrong_magic),
        Err(WireError::BadMagic { expected: EVENT_MAGIC, .. })
    ));

    let mut future = bytes.clone();
    future[4..6].copy_from_slice(&(EVENT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        EventFrame::from_bytes(&future),
        Err(WireError::FutureVersion { found, supported: EVENT_VERSION })
            if found == EVENT_VERSION + 1
    ));

    let mut bad_tag = bytes.clone();
    bad_tag[EVENT_HEADER_LEN - 1] = 9;
    assert!(matches!(
        EventFrame::from_bytes(&bad_tag),
        Err(WireError::BadTag { what: "event frame tag", value: 9 })
    ));

    // Garbage *after* the body section: the frame-level finish catches it.
    let mut after = bytes.clone();
    after.extend_from_slice(b"garbage");
    assert!(matches!(
        EventFrame::from_bytes(&after),
        Err(WireError::TrailingBytes { what: "event frame", .. })
    ));
}

#[test]
fn trailing_bytes_inside_the_body_section_are_refused() {
    // Hand-build an Advance whose body section over-declares its length:
    // the decode consumes seq + boundary, then the section finish must
    // flag the surplus instead of silently skipping it.
    let mut w = WireWriter::new();
    w.put_bytes_raw(&EVENT_MAGIC);
    w.put_u16(EVENT_VERSION);
    w.put_u8(3); // Advance
    w.put_section(|w| {
        w.put_u64(1);
        w.put_i64(300);
        w.put_u8(0xEE); // the smuggled byte
    });
    assert!(matches!(
        EventFrame::from_bytes(&w.into_bytes()),
        Err(WireError::TrailingBytes { what: "event frame body", extra: 1 })
    ));
}

#[test]
fn absurd_batch_and_probe_lengths_fail_fast() {
    // A batch length far beyond the buffer must be refused before any
    // allocation keyed on it.
    let mut w = WireWriter::new();
    w.put_bytes_raw(&EVENT_MAGIC);
    w.put_u16(EVENT_VERSION);
    w.put_u8(2); // Batch
    w.put_section(|w| {
        w.put_u64(1);
        w.put_u32(0);
        w.put_len(usize::MAX / 2);
    });
    assert!(matches!(EventFrame::from_bytes(&w.into_bytes()), Err(WireError::Truncated { .. })));

    // A bad tag spliced into the first *event* inside an otherwise valid
    // batch surfaces as the event codec's typed error.
    let mut bytes = golden_frame().to_bytes();
    // Header + section length prefix + seq + instance + batch len, then
    // the first event's tag byte.
    let first_event_tag = EVENT_HEADER_LEN + 8 + 8 + 4 + 8;
    bytes[first_event_tag] = 0xAB;
    assert!(matches!(
        EventFrame::from_bytes(&bytes),
        Err(WireError::BadTag { what: "telemetry event tag", value: 0xAB })
    ));
}

/// A deterministic mutation sweep standing in for a fuzzer: flip every
/// byte of the golden frame to a handful of adversarial values, and walk
/// a keyed pseudo-random byte soup. Decode must return — any outcome is
/// fine, panicking or hanging is not.
#[test]
fn mutation_sweep_never_panics() {
    let bytes = golden_frame().to_bytes();
    for at in 0..bytes.len() {
        for val in [0x00, 0x01, 0x7F, 0x80, 0xFF] {
            let mut mutated = bytes.clone();
            mutated[at] = val;
            let _ = EventFrame::from_bytes(&mutated);
        }
    }

    // Keyed xorshift soup: valid header prefixes spliced onto noise.
    let mut state = 0x9E37_79B9_u32;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    for round in 0..256 {
        let len = (next() % 64) as usize;
        let mut noise: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        if round % 2 == 0 && noise.len() >= EVENT_HEADER_LEN {
            noise[..4].copy_from_slice(&EVENT_MAGIC);
            noise[4..6].copy_from_slice(&EVENT_VERSION.to_le_bytes());
        }
        let _ = EventFrame::from_bytes(&noise);
    }
}
