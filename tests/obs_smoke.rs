//! Observability smoke: a recorded golden case must export a valid
//! chrome trace and a coherent metrics snapshot, and the *disabled*
//! observer must cost (statistically) nothing on the ingest hot path.

mod common;

use common::{load_manifest, scenario_for, GOLDEN_DELTA_S};
use pinsql::PinSqlConfig;
use pinsql_engine::{replay_diagnose_observed, OnlineInstance};
use pinsql_obs::export::{chrome_trace, metrics_export, validate_chrome_trace};
use pinsql_obs::{Counter, RecordingObserver, Stage};
use pinsql_scenario::materialize_events;
use std::time::Instant;

#[test]
fn recorded_golden_case_exports_valid_trace_and_metrics() {
    let manifest = load_manifest();
    let entry = &manifest[0];
    let scenario = scenario_for(entry);
    let obs = RecordingObserver::new();
    let (lc, d) =
        replay_diagnose_observed(&scenario, GOLDEN_DELTA_S, &PinSqlConfig::default(), &obs);
    assert!(!lc.case.templates.is_empty());
    assert!(!d.rsqls.is_empty());

    let registry = obs.registry();

    // Chrome trace: structurally valid, with at least one complete event
    // per recorded stage, timestamps inside the run.
    let trace = chrome_trace(&registry, &obs.lanes());
    let n_events = validate_chrome_trace(&trace).expect("trace must validate");
    assert!(n_events > 0, "trace must carry complete events");
    assert_eq!(
        n_events,
        registry.trace().len(),
        "every buffered span becomes one X event"
    );

    // Metrics export: every stage the replay exercised has a histogram
    // whose totals are self-consistent, and the close-time counters match
    // the case the pipeline actually closed.
    let metrics = metrics_export(&registry);
    for stage in
        [Stage::CellFold, Stage::DetectorStep, Stage::WindowCut, Stage::SessionEstimate, Stage::Hsql, Stage::Rsql]
    {
        let s = metrics.stages.get(stage.name()).unwrap_or_else(|| {
            panic!("stage {} missing from metrics export", stage.name())
        });
        assert!(s.count > 0, "stage {}", stage.name());
        assert!(s.max_ns >= s.p50_ns || s.count == 0, "stage {}", stage.name());
        assert_eq!(
            s.buckets.iter().sum::<u64>(),
            s.count,
            "stage {}: bucket counts sum to span count",
            stage.name()
        );
    }
    assert!(metrics.counters[Counter::EventsIngested.name()] > 0);
    assert!(metrics.counters[Counter::QueriesIngested.name()] > 0);
    // Every open transition is eventually matched by a close transition,
    // except a segment still open when the stream ends.
    let opened = metrics.counters[Counter::CasesOpened.name()];
    let closed = metrics.counters[Counter::CasesClosed.name()];
    assert!(opened >= 1, "a golden anomaly case must open");
    assert!(opened - closed <= 1, "opens {opened} vs closes {closed}");

    // The export itself must serialize (the fleet bench writes it).
    let json = serde_json::to_string(&metrics).expect("metrics serialize");
    assert!(json.contains("cell_fold"));
}

#[test]
fn disabled_observer_adds_no_measurable_ingest_cost() {
    // The zero-overhead claim, pinned loosely enough for CI: streaming a
    // scenario through `OnlineInstance` (default `NoopObserver`) must stay
    // within a small factor of the raw collector+detector loop it wraps.
    // The instrumented sites compile to nothing, so the only honest
    // difference is the event counter and segment-edge bookkeeping; a
    // forgotten always-on `Instant::now()` per event would blow well past
    // the bar. Min-of-N wall clocks to shed scheduler noise.
    let manifest = load_manifest();
    let scenario = scenario_for(&manifest[0]);
    let events = materialize_events(&scenario, None);
    const ROUNDS: usize = 5;

    let mut raw_best = f64::INFINITY;
    let mut inst_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let evs = events.clone();
        let t = Instant::now();
        let mut agg = pinsql_collector::IncrementalAggregator::new(
            &scenario.workload.specs,
            pinsql_collector::IncrementalConfig::default()
                .with_retention(scenario.cfg.window_s + 120),
        );
        let mut bank = pinsql_detect::OnlineDetectorBank::new();
        for ev in evs {
            if let pinsql_dbsim::TelemetryEvent::Metrics(sample) = &ev {
                bank.observe(sample);
            }
            agg.ingest(ev);
        }
        raw_best = raw_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box((&agg, &bank));

        let evs = events.clone();
        let t = Instant::now();
        let mut inst = OnlineInstance::new(&scenario, GOLDEN_DELTA_S);
        for ev in evs {
            inst.ingest(ev);
        }
        inst_best = inst_best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&inst);
    }

    let factor = inst_best / raw_best.max(1e-9);
    assert!(
        factor < 2.5,
        "noop-observed instance ingest is {factor:.2}x the raw loop \
         ({inst_best:.4}s vs {raw_best:.4}s) — observability is no longer free when disabled"
    );
}
