//! Parallelism must never change results: for any worker count the
//! diagnoser, the correlation-graph kernel, and the eval fan-out all
//! produce bit-identical output to the serial path. This is the contract
//! that lets `parallelism: 0` be the default everywhere without touching
//! a single expected number in EXPERIMENTS.md.

use pinsql::{Diagnosis, PinSql, PinSqlConfig};
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, LabeledCase, ScenarioConfig};
use pinsql_timeseries::{connected_components, connected_components_par, par_map};

fn labeled_case(seed: u64, kind: AnomalyKind) -> LabeledCase {
    let cfg = ScenarioConfig::default().with_seed(seed);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, kind);
    materialize(&scenario, 600)
}

fn diagnose_with(case: &LabeledCase, parallelism: usize) -> Diagnosis {
    let pinsql = PinSql::new(PinSqlConfig::default().with_parallelism(parallelism));
    pinsql.diagnose(&case.case, &case.window, &case.history, case.minutes_origin)
}

/// `(rsqls, hsqls, n_clusters, selected_clusters)`, scores as raw bits.
type Fingerprint = (Vec<(u64, u64)>, Vec<(u64, u64)>, usize, usize);

/// Everything rank-relevant, with scores compared bit-for-bit.
fn fingerprint(d: &Diagnosis) -> Fingerprint {
    (
        d.rsqls.iter().map(|r| (r.id.0, r.score.to_bits())).collect(),
        d.hsqls.iter().map(|r| (r.id.0, r.score.to_bits())).collect(),
        d.n_clusters,
        d.selected_clusters,
    )
}

#[test]
fn diagnosis_is_identical_for_any_parallelism() {
    for kind in [AnomalyKind::PoorSql, AnomalyKind::BusinessSpike, AnomalyKind::MdlLock] {
        let case = labeled_case(77, kind);
        let serial = fingerprint(&diagnose_with(&case, 1));
        for parallelism in [2usize, 4, 0] {
            let par = fingerprint(&diagnose_with(&case, parallelism));
            assert_eq!(serial, par, "kind {kind:?} parallelism {parallelism}");
        }
    }
}

#[test]
fn correlation_clustering_is_identical_for_any_parallelism() {
    // Deterministic pseudo-random series with a few strongly-correlated
    // families, so the graph has non-trivial components.
    let mut x = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % 1000) as f64 / 1000.0
    };
    let n = 120usize;
    let len = 60usize;
    let series: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let family = i % 7;
            (0..len)
                .map(|t| (t as f64 / (3.0 + family as f64)).sin() * 5.0 + next() * 0.8)
                .collect()
        })
        .collect();
    let refs: Vec<&[f64]> = series.iter().map(Vec::as_slice).collect();
    let serial = connected_components(&refs, 0.8);
    for parallelism in [2usize, 4, 16, 0] {
        assert_eq!(serial, connected_components_par(&refs, 0.8, parallelism), "p={parallelism}");
    }
}

#[test]
fn eval_fan_out_preserves_case_results() {
    // The experiment drivers' outer fan-out (par_map over cases) must
    // return per-case results in case order, independent of scheduling.
    let cases: Vec<LabeledCase> = (0..4)
        .map(|i| labeled_case(200 + i, AnomalyKind::ALL[i as usize % AnomalyKind::ALL.len()]))
        .collect();
    let serial: Vec<_> =
        cases.iter().map(|c| fingerprint(&diagnose_with(c, 1))).collect();
    for workers in [2usize, 4, 0] {
        let par = par_map(cases.len(), workers, |i| fingerprint(&diagnose_with(&cases[i], 1)));
        assert_eq!(serial, par, "workers {workers}");
    }
}
