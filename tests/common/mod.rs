//! Shared fixtures for the golden-corpus suites: the manifest, the
//! rank-relevant `Snapshot` view of a diagnosis, the batch pipeline that
//! produces it, and the parametrized shard × fanout × kernel equivalence
//! harness. `golden_corpus.rs` pins snapshots to disk; the
//! `online/shard/reshard/daemon_equivalence` suites replay the same cases
//! through their respective engines and byte-compare against the batch
//! snapshots via [`assert_fleet_matches_batch`].

#![allow(dead_code)]

use pinsql::{Diagnosis, PinSql, PinSqlConfig};
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{FleetConfig, FleetRun};
use pinsql_scenario::{
    generate_base, inject, materialize, AnomalyKind, LabeledCase, Scenario, ScenarioConfig,
};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Collection look-back used for every golden case.
pub const GOLDEN_DELTA_S: i64 = 600;

#[derive(Debug, Deserialize)]
pub struct ManifestEntry {
    pub name: String,
    pub kind: String,
    pub seed: u64,
}

/// The rank-relevant, timing-free view of one diagnosed case.
#[derive(Debug, Serialize)]
pub struct Snapshot {
    pub name: String,
    pub kind: String,
    pub seed: u64,
    pub detected: bool,
    pub anomaly_type: String,
    pub window: (i64, i64, i64),
    pub truth_rsqls: Vec<u64>,
    pub truth_hsqls: Vec<u64>,
    pub n_clusters: usize,
    pub selected_clusters: usize,
    pub n_verified: usize,
    pub n_reported: usize,
    /// Top-ranked templates as `(id, label, score bits as hex)` — bit-exact
    /// scores keep the comparison byte-stable without decimal formatting
    /// ambiguity.
    pub top_rsqls: Vec<(u64, String, String)>,
    pub top_hsqls: Vec<(u64, String, String)>,
}

pub fn top5(list: &[pinsql::RankedTemplate]) -> Vec<(u64, String, String)> {
    list.iter()
        .take(5)
        .map(|r| (r.id.0, r.label.clone(), format!("{:016x}", r.score.to_bits())))
        .collect()
}

pub fn kind_of(s: &str) -> AnomalyKind {
    AnomalyKind::ALL
        .into_iter()
        .find(|k| k.label() == s)
        .unwrap_or_else(|| panic!("unknown kind in manifest: {s}"))
}

pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// Loads and sanity-checks the 16-case manifest.
pub fn load_manifest() -> Vec<ManifestEntry> {
    let manifest: Vec<ManifestEntry> = serde_json::from_str(
        &std::fs::read_to_string(golden_dir().join("manifest.json")).expect("read manifest"),
    )
    .expect("parse manifest");
    assert_eq!(manifest.len(), 16, "four cases per anomaly kind");
    for kind in AnomalyKind::ALL {
        assert_eq!(
            manifest.iter().filter(|e| e.kind == kind.label()).count(),
            4,
            "manifest must hold four {} cases",
            kind.label()
        );
    }
    manifest
}

/// Rebuilds a manifest entry's scenario (pure function of the entry).
pub fn scenario_for(entry: &ManifestEntry) -> Scenario {
    let cfg = ScenarioConfig::default().with_seed(entry.seed);
    let base = generate_base(&cfg);
    inject(&base, &cfg, kind_of(&entry.kind))
}

/// Builds the snapshot view from an already-labelled, already-diagnosed
/// case — shared by the batch and online paths so both serialize through
/// the exact same struct (field order included).
pub fn snapshot_of(entry: &ManifestEntry, lc: &LabeledCase, d: &Diagnosis) -> Snapshot {
    Snapshot {
        name: entry.name.clone(),
        kind: entry.kind.clone(),
        seed: entry.seed,
        detected: lc.detected,
        anomaly_type: lc.anomaly_type.clone(),
        window: (lc.window.ts(), lc.window.anomaly_start, lc.window.anomaly_end),
        truth_rsqls: lc.truth.rsqls.iter().map(|id| id.0).collect(),
        truth_hsqls: lc.truth.hsqls.iter().map(|id| id.0).collect(),
        n_clusters: d.n_clusters,
        selected_clusters: d.selected_clusters,
        n_verified: d.n_verified,
        n_reported: d.reported_rsqls.len(),
        top_rsqls: top5(&d.rsqls),
        top_hsqls: top5(&d.hsqls),
    }
}

/// Materializes and diagnoses one manifest entry through the batch path.
pub fn batch_snapshot(entry: &ManifestEntry, parallelism: usize) -> (Snapshot, Diagnosis) {
    let scenario = scenario_for(entry);
    let lc = materialize(&scenario, GOLDEN_DELTA_S);
    let d = PinSql::new(PinSqlConfig::default().with_parallelism(parallelism)).diagnose(
        &lc.case,
        &lc.window,
        &lc.history,
        lc.minutes_origin,
    );
    let snap = snapshot_of(entry, &lc, &d);
    (snap, d)
}

/// The batch reference, serialized once per manifest entry — what every
/// fleet-shaped suite byte-compares against. (The batch path's own
/// parallelism invariance is pinned separately by `golden_corpus.rs`.)
pub fn batch_reference_jsons(manifest: &[ManifestEntry]) -> Vec<String> {
    manifest
        .iter()
        .map(|entry| {
            let (snap, _) = batch_snapshot(entry, 1);
            serde_json::to_string_pretty(&snap).expect("serialize snapshot")
        })
        .collect()
}

/// One cell of the fleet equivalence matrix.
#[derive(Debug, Clone, Copy)]
pub struct MatrixPoint {
    pub shards: usize,
    pub fanout: usize,
    pub kernel: KernelKind,
    pub cut: CutKind,
}

impl MatrixPoint {
    /// Failure-message label: `shards 2, fanout 4, kernel fast, cut incremental`.
    pub fn label(&self) -> String {
        format!(
            "shards {}, fanout {}, kernel {}, cut {}",
            self.shards,
            self.fanout,
            self.kernel.label(),
            self.cut.label()
        )
    }
}

/// The full matrix every fleet-shaped equivalence suite runs:
/// shards {1, 2, 4} × fanout {1, 4} × both detector kernels × both
/// window-cut paths.
pub fn matrix_points() -> Vec<MatrixPoint> {
    let mut points = Vec::new();
    for shards in [1usize, 2, 4] {
        for fanout in [1usize, 4] {
            for kernel in [KernelKind::Fast, KernelKind::Reference] {
                for cut in [CutKind::Incremental, CutKind::Reference] {
                    points.push(MatrixPoint { shards, fanout, kernel, cut });
                }
            }
        }
    }
    points
}

/// The golden-corpus [`FleetConfig`] at one matrix point.
pub fn golden_fleet_config(p: MatrixPoint) -> FleetConfig {
    FleetConfig {
        delta_s: GOLDEN_DELTA_S,
        pinsql: PinSqlConfig::default().with_cut(p.cut),
        fanout: p.fanout,
        shards: p.shards,
        kernel: p.kernel,
        ..FleetConfig::default()
    }
}

/// Byte-compares one golden case against its batch reference.
pub fn assert_case_matches_batch(
    entry: &ManifestEntry,
    batch_json: &str,
    lc: &LabeledCase,
    d: &Diagnosis,
    what: &str,
) {
    let json = serde_json::to_string_pretty(&snapshot_of(entry, lc, d)).expect("serialize");
    assert_eq!(json, batch_json, "{}: {what} diverged from batch", entry.name);
}

/// The shared equivalence matrix: calls `run` at every [`MatrixPoint`]
/// and byte-compares every golden case of the resulting [`FleetRun`]
/// against the batch reference. `what` names the run shape in failures
/// (e.g. "fleet run", "resharded run", "daemon run").
pub fn assert_fleet_matches_batch(
    manifest: &[ManifestEntry],
    scenarios: &[Scenario],
    batch_jsons: &[String],
    what: &str,
    run: impl FnMut(MatrixPoint, &[Scenario]) -> FleetRun,
) {
    assert_fleet_matches_batch_at(&matrix_points(), manifest, scenarios, batch_jsons, what, run);
}

/// [`assert_fleet_matches_batch`] over an explicit set of matrix points —
/// for suites whose axis is orthogonal to fanout (the transport suite
/// runs shards × kernels and lets the default matrix pin fanout).
pub fn assert_fleet_matches_batch_at(
    points: &[MatrixPoint],
    manifest: &[ManifestEntry],
    scenarios: &[Scenario],
    batch_jsons: &[String],
    what: &str,
    mut run: impl FnMut(MatrixPoint, &[Scenario]) -> FleetRun,
) {
    for &p in points {
        let out = run(p, scenarios);
        assert_eq!(out.cases.len(), manifest.len(), "{what} ({}): case count", p.label());
        for (i, entry) in manifest.iter().enumerate() {
            assert_case_matches_batch(
                entry,
                &batch_jsons[i],
                &out.cases[i],
                &out.diagnoses[i],
                &format!("{what} ({})", p.label()),
            );
        }
    }
}

/// Drives one connection of the socketed ingest path over the in-memory
/// loopback: the agent serves `sink` on one end while the source drives
/// `plan` on the other, each on its own thread. `cut_after` arms the
/// source→sink byte-level fault before any traffic flows. Returns the
/// (source, agent) results; a clean run is `(Ok, Ok)`.
pub fn drive_loopback<O: pinsql_obs::Observer>(
    sink: &mut pinsql_engine::IngestSink<'_, O>,
    plan: &mut pinsql_engine::SourcePlan,
    max_frame_bytes: usize,
    cut_after: Option<usize>,
) -> (
    Result<(), pinsql_engine::TransportError>,
    Result<(), pinsql_engine::TransportError>,
) {
    let (mut source_conn, mut agent_conn) = pinsql_engine::pipe_pair(max_frame_bytes);
    if let Some(bytes) = cut_after {
        source_conn.cut_outbound_after(bytes);
    }
    std::thread::scope(|s| {
        let agent = s.spawn(move || pinsql_engine::serve_agent(&mut agent_conn, sink));
        let src = pinsql_engine::run_source(&mut source_conn, plan);
        // Dropping the source's end closes its outbound direction, so a
        // serve loop that is still healthy sees a clean close and returns.
        drop(source_conn);
        (src, agent.join().expect("agent thread panicked"))
    })
}

/// `assignment[i]` under the engine's static contiguous layout.
pub fn contiguous(n: usize, shards: usize) -> Vec<usize> {
    (0..n).map(|i| i * shards / n.max(1)).map(|s| s.min(shards - 1)).collect()
}

/// The adversarial handoff: every instance moves to the mirror shard, so
/// shard-local orderings all change and any reassembly that leans on
/// within-shard contiguity or finish order breaks loudly.
pub fn reversed(n: usize, shards: usize) -> Vec<usize> {
    contiguous(n, shards).into_iter().map(|s| shards - 1 - s).collect()
}
