//! Crash recovery: kill ingestion at an arbitrary point, restore every
//! instance from the last fleet checkpoint, replay only the tail — the
//! final cases and diagnoses are byte-identical to a run that never
//! crashed.
//!
//! The checkpoint and the resume deliberately run under *different*
//! shard/fanout layouts (a recovered fleet rarely comes back on the same
//! machine shape), so this also pins that checkpoints are portable
//! across layouts.

mod common;

use common::{batch_snapshot, load_manifest, scenario_for, snapshot_of, GOLDEN_DELTA_S};
use pinsql::PinSqlConfig;
use pinsql_detect::KernelKind;
use pinsql_engine::{FleetConfig, FleetEngine};

fn engine(shards: usize, fanout: usize) -> FleetEngine {
    FleetEngine::new(FleetConfig {
        delta_s: GOLDEN_DELTA_S,
        pinsql: PinSqlConfig::default(),
        fanout,
        shards,
        kernel: KernelKind::Fast,
        ..FleetConfig::default()
    })
}

#[test]
fn resume_from_checkpoint_matches_uninterrupted_run() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();

    let batch_jsons: Vec<String> = manifest
        .iter()
        .map(|entry| {
            let (snap, _) = batch_snapshot(entry, 1);
            serde_json::to_string_pretty(&snap).expect("serialize snapshot")
        })
        .collect();

    // Before the anomaly, mid-anomaly (open segments, half-folded
    // minutes), and after it — the three qualitatively different crash
    // moments.
    for at_second in [300i64, 800, 1100] {
        let ckpt = engine(2, 4).checkpoint_at(&scenarios, at_second);
        assert_eq!(ckpt.at_second, at_second);
        assert_eq!(ckpt.snapshots.len(), scenarios.len());
        assert!(ckpt.total_bytes() > 0);

        let resumed = engine(3, 1).resume_full(&scenarios, &ckpt).expect("checkpoint decodes");
        for (i, entry) in manifest.iter().enumerate() {
            let snap = snapshot_of(entry, &resumed.cases[i], &resumed.diagnoses[i]);
            let json = serde_json::to_string_pretty(&snap).expect("serialize snapshot");
            assert_eq!(
                json, batch_jsons[i],
                "{}: resume from checkpoint at t={at_second}s diverged from batch",
                entry.name
            );
        }
    }
}

/// Checkpointing is deterministic: two checkpoints of the same fleet at
/// the same boundary are byte-identical, whatever layout cut them (the
/// default dense cell store serializes in slot order).
#[test]
fn checkpoints_are_deterministic_and_layout_independent() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(4).map(scenario_for).collect();

    let a = engine(1, 1).checkpoint_at(&scenarios, 800);
    let b = engine(4, 2).checkpoint_at(&scenarios, 800);
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for (i, (sa, sb)) in a.snapshots.iter().zip(&b.snapshots).enumerate() {
        assert_eq!(sa.as_bytes(), sb.as_bytes(), "instance {i}: checkpoint bytes differ");
        assert_eq!(sa.kernel(), KernelKind::Fast);
    }
}

/// A checkpoint survives the serialize → ship → revalidate cycle: wrapped
/// back through `from_bytes`, every snapshot still resumes exactly.
#[test]
fn shipped_checkpoint_bytes_resume_exactly() {
    use pinsql_engine::{FleetCheckpoint, InstanceSnapshot};

    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(4).map(scenario_for).collect();

    let baseline = engine(1, 1).run_full(&scenarios);
    let ckpt = engine(2, 2).checkpoint_at(&scenarios, 800);
    let shipped = FleetCheckpoint {
        at_second: ckpt.at_second,
        snapshots: ckpt
            .snapshots
            .iter()
            .map(|s| InstanceSnapshot::from_bytes(s.as_bytes().to_vec()).expect("revalidates"))
            .collect(),
    };
    let resumed = engine(2, 2).resume_full(&scenarios, &shipped).expect("checkpoint decodes");
    for (i, entry) in manifest.iter().take(4).enumerate() {
        let a = snapshot_of(entry, &baseline.cases[i], &baseline.diagnoses[i]);
        let b = snapshot_of(entry, &resumed.cases[i], &resumed.diagnoses[i]);
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap(),
            "{}: shipped checkpoint diverged",
            entry.name
        );
    }
}
