//! Wire-format hardening for instance snapshots.
//!
//! A golden snapshot blob lives at `tests/golden/instance_snapshot.bin`
//! (self-blessing on first run; `PINSQL_BLESS=1` regenerates after an
//! intentional format change). Against it this suite pins:
//!
//! * byte-stability — today's engine reproduces the committed blob
//!   exactly, so any accidental wire-format change fails loudly;
//! * typed failure on *every* malformed shape — truncation at each byte,
//!   wrong magic, future version, unknown and spliced kind tags, trailing
//!   garbage, and restore into the wrong scenario — never a panic, never
//!   a silently wrong instance.

mod common;

use pinsql_engine::{
    InstanceSnapshot, OnlineInstance, MIN_SNAPSHOT_VERSION, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use pinsql_scenario::{generate_base, inject, materialize_events, AnomalyKind, ScenarioConfig};
use pinsql_timeseries::WireError;

const DELTA_S: i64 = 60;

fn golden_scenario() -> pinsql_scenario::Scenario {
    let cfg = ScenarioConfig {
        seed: 42,
        n_business: 4,
        n_giants: 1,
        root_rate: (1.0, 3.0),
        giant_rate: (6.0, 10.0),
        window_s: 240,
        anomaly_start: 120,
        anomaly_end: 180,
        cores: 2.0,
        io_channels: 4.0,
    };
    let base = generate_base(&cfg);
    inject(&base, &cfg, AnomalyKind::BusinessSpike)
}

/// The canonical blob: the golden scenario's stream cut mid-anomaly
/// (open detector segment, half-folded minute) and snapshotted.
fn build_snapshot(scenario: &pinsql_scenario::Scenario) -> InstanceSnapshot {
    let events = materialize_events(scenario, None);
    let cut = events.partition_point(|ev| ev.time_ms() < 150.0 * 1000.0);
    let mut inst = OnlineInstance::new(scenario, DELTA_S);
    inst.ingest_stream(events[..cut].to_vec());
    inst.snapshot()
}

#[test]
fn golden_blob_is_byte_stable_and_restores() {
    let scenario = golden_scenario();
    let snap = build_snapshot(&scenario);
    assert_eq!(&snap.as_bytes()[..4], &SNAPSHOT_MAGIC);
    assert!(!snap.is_empty());
    assert_eq!(snap.len(), snap.as_bytes().len());

    let path = common::golden_dir().join("instance_snapshot.bin");
    let bless = std::env::var_os("PINSQL_BLESS").is_some();
    if bless || !path.exists() {
        std::fs::write(&path, snap.as_bytes()).expect("write golden snapshot blob");
    }
    let committed = std::fs::read(&path).expect("read golden snapshot blob");
    assert_eq!(
        committed,
        snap.as_bytes(),
        "snapshot wire bytes changed; if intentional, bump SNAPSHOT_VERSION and \
         regenerate with PINSQL_BLESS=1"
    );

    // The committed bytes round-trip through the untrusted path and keep
    // ingesting: drain the tail and close the case without error.
    let wrapped = InstanceSnapshot::from_bytes(committed).expect("golden blob validates");
    assert_eq!(wrapped.kernel(), snap.kernel());
    assert_eq!(wrapped.cellstore_kind(), snap.cellstore_kind());
    let mut restored = OnlineInstance::restore(&scenario, &wrapped).expect("golden blob restores");
    let events = materialize_events(&scenario, None);
    let cut = events.partition_point(|ev| ev.time_ms() < 150.0 * 1000.0);
    restored.ingest_stream(events[cut..].to_vec());
    let lc = restored.close_case();
    assert!(lc.case.n_seconds() > 0);
}

#[test]
fn every_truncation_yields_a_typed_error() {
    let scenario = golden_scenario();
    let bytes = build_snapshot(&scenario).into_bytes();
    for cut in 0..bytes.len() {
        match InstanceSnapshot::from_bytes(bytes[..cut].to_vec()) {
            // Header survived the cut; the body decode must catch it.
            Ok(snap) => assert!(
                OnlineInstance::restore(&scenario, &snap).is_err(),
                "truncation at {cut}/{} restored",
                bytes.len()
            ),
            Err(e) => assert!(
                matches!(e, WireError::Truncated { .. } | WireError::BadMagic { .. }),
                "truncation at {cut}: unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn corrupt_headers_yield_specific_typed_errors() {
    let scenario = golden_scenario();
    let bytes = build_snapshot(&scenario).into_bytes();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'Q';
    assert!(matches!(
        InstanceSnapshot::from_bytes(wrong_magic),
        Err(WireError::BadMagic { expected: SNAPSHOT_MAGIC, .. })
    ));

    let mut future = bytes.clone();
    future[4] = 0xFF; // little-endian low byte: version 0xFF > 2
    assert!(matches!(
        InstanceSnapshot::from_bytes(future),
        Err(WireError::FutureVersion { supported: SNAPSHOT_VERSION, .. })
    ));

    let mut bad_kernel = bytes.clone();
    bad_kernel[6] = 9;
    assert!(matches!(
        InstanceSnapshot::from_bytes(bad_kernel),
        Err(WireError::BadTag { what: "kernel kind", value: 9 })
    ));

    let mut bad_cells = bytes.clone();
    bad_cells[7] = 9;
    assert!(matches!(
        InstanceSnapshot::from_bytes(bad_cells),
        Err(WireError::BadTag { what: "cellstore kind", value: 9 })
    ));

    // A *valid-looking* spliced header — kind tags flipped to the other
    // legal value — passes routing validation but must fail restore's
    // header-vs-body cross-check.
    let mut spliced_kernel = bytes.clone();
    spliced_kernel[6] ^= 1;
    let snap = InstanceSnapshot::from_bytes(spliced_kernel).expect("tag is legal in isolation");
    assert!(matches!(
        OnlineInstance::restore(&scenario, &snap),
        Err(WireError::Mismatch { what: "kernel tag", .. })
    ));

    let mut spliced_cells = bytes.clone();
    spliced_cells[7] ^= 1;
    let snap = InstanceSnapshot::from_bytes(spliced_cells).expect("tag is legal in isolation");
    assert!(matches!(
        OnlineInstance::restore(&scenario, &snap),
        Err(WireError::Mismatch { what: "cellstore tag", .. })
    ));

    let mut trailing = bytes.clone();
    trailing.extend_from_slice(b"garbage");
    let snap = InstanceSnapshot::from_bytes(trailing).expect("header is intact");
    assert!(matches!(
        OnlineInstance::restore(&scenario, &snap),
        Err(WireError::TrailingBytes { .. })
    ));
}

/// Splits a snapshot's bytes into its 8-byte header and length-prefixed
/// sections (meta, aggregator, bank, and — since v2 — cut state).
fn sections(bytes: &[u8]) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut out = Vec::new();
    let mut at = 8usize;
    while at < bytes.len() {
        let len = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
        out.push(bytes[at..at + 8 + len].to_vec());
        at += 8 + len;
    }
    (bytes[..8].to_vec(), out)
}

/// Backward decode: a v1 blob is exactly a v2 blob without the trailing
/// cut-state section. Derive one from the live encoder (truncate the
/// fourth section, patch the version field) and pin that it still
/// restores — with the running-moment state rebuilt from the rings —
/// and that the v1-restored instance re-serializes as a v2 blob whose
/// meta/aggregator/bank sections are byte-identical to the original.
#[test]
fn previous_version_blob_without_cut_state_still_restores() {
    let scenario = golden_scenario();
    let v2 = build_snapshot(&scenario).into_bytes();
    assert_eq!(u16::from_le_bytes([v2[4], v2[5]]), SNAPSHOT_VERSION);
    let (header, parts) = sections(&v2);
    assert_eq!(parts.len(), 4, "a v2 blob carries meta, aggregator, bank, and cut state");

    let mut v1 = header.clone();
    for s in &parts[..3] {
        v1.extend_from_slice(s);
    }
    v1[4..6].copy_from_slice(&MIN_SNAPSHOT_VERSION.to_le_bytes());

    let wrapped = InstanceSnapshot::from_bytes(v1).expect("derived v1 blob validates");
    assert_eq!(wrapped.version(), MIN_SNAPSHOT_VERSION);
    let mut from_v1 =
        OnlineInstance::restore(&scenario, &wrapped).expect("v1 blob restores without cut state");
    let v2_wrapped = InstanceSnapshot::from_bytes(v2).expect("v2 blob validates");
    let mut from_v2 = OnlineInstance::restore(&scenario, &v2_wrapped).expect("v2 blob restores");

    // Re-serializing the v1 restore writes today's version, and every
    // section below the cut state matches the original bytes exactly.
    // (The rebuilt cut moments are behaviorally equivalent but re-derived
    // in ring-sweep order, so that section is not compared bit-wise.)
    let reser = from_v1.snapshot();
    let (h2, p2) = sections(reser.as_bytes());
    assert_eq!(h2, header, "v1 restore re-serializes under the current header");
    assert_eq!(p2.len(), 4, "re-serialization regains the cut-state section");
    for (i, (a, b)) in p2[..3].iter().zip(&parts[..3]).enumerate() {
        assert_eq!(a, b, "section {i} diverged after the v1 round-trip");
    }

    // Both restores drain the tail to the same closed case: identical
    // carried matrix rows, and advisory gates equal to within rounding
    // of the sweep-order rebuild.
    let events = materialize_events(&scenario, None);
    let cut_at = events.partition_point(|ev| ev.time_ms() < 150.0 * 1000.0);
    from_v1.ingest_stream(events[cut_at..].to_vec());
    from_v2.ingest_stream(events[cut_at..].to_vec());
    let a = from_v1.close_case();
    let b = from_v2.close_case();
    let ca = a.case.cut.as_deref().expect("v1 restore closes with a cut");
    let cb = b.case.cut.as_deref().expect("v2 restore closes with a cut");
    assert_eq!(ca.minute_start, cb.minute_start);
    assert_eq!(ca.minute_rows, cb.minute_rows, "carried matrix rows must be exact");
    assert_eq!(ca.gate.len(), cb.gate.len());
    for (i, (x, y)) in ca.gate.iter().zip(&cb.gate).enumerate() {
        assert!((x - y).abs() <= 1e-9, "gate {i}: v1 rebuild {x} vs v2 state {y}");
    }
}

#[test]
fn restore_into_wrong_scenario_is_a_typed_error() {
    let scenario = golden_scenario();
    let snap = build_snapshot(&scenario);

    let other_cfg = ScenarioConfig { seed: 43, n_business: 7, ..ScenarioConfig::default() };
    let other = inject(&generate_base(&other_cfg), &other_cfg, AnomalyKind::MdlLock);
    let err = OnlineInstance::restore(&other, &snap);
    assert!(err.is_err(), "restoring into a different scenario must fail, got Ok");
}
