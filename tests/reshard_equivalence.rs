//! Reshard equivalence: a live mid-stream reshard is behaviorally
//! invisible.
//!
//! All 16 manifest scenarios run as one fleet under a [`ReshardPlan`]
//! that quiesces mid-anomaly, snapshots every instance, moves it to a
//! different shard, restores, and resumes — across the shared matrix
//! (shards {1, 2, 4} × fanout {1, 4} × both kernels) — and every case's
//! `Snapshot` JSON must match the uninterrupted batch pipeline
//! **byte-for-byte**. Scores travel as `f64` bit patterns, so a single
//! ULP of drift introduced anywhere in the serialize → hand off →
//! restore path fails the matrix.

mod common;

use common::{
    assert_fleet_matches_batch, batch_reference_jsons, golden_fleet_config, load_manifest,
    reversed, scenario_for, snapshot_of, MatrixPoint,
};
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{FleetEngine, ReshardPlan, ReshardStep};

fn engine(shards: usize, fanout: usize, kernel: KernelKind) -> FleetEngine {
    FleetEngine::new(golden_fleet_config(MatrixPoint {
        shards,
        fanout,
        kernel,
        cut: CutKind::default(),
    }))
}

#[test]
fn resharded_fleet_matches_batch_on_every_golden_case() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let n = scenarios.len();
    let batch_jsons = batch_reference_jsons(&manifest);

    assert_fleet_matches_batch(&manifest, &scenarios, &batch_jsons, "resharded run", |p, sc| {
        // Quiesce mid-anomaly (the hardest moment: open detector
        // segments, partially folded minutes) and reverse the shard
        // assignment.
        let plan = ReshardPlan::single(800, reversed(n, p.shards.min(n)));
        FleetEngine::new(golden_fleet_config(p))
            .run_resharded(sc, &plan)
            .expect("snapshot handoff decodes")
    });
}

/// The degenerate 1 → N → 1 plan: the whole fleet collapses onto one
/// shard, explodes to one-instance-per-shard mid-anomaly, then collapses
/// back — still byte-identical to never resharding at all.
#[test]
fn degenerate_one_to_many_to_one_plan_is_invisible() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let n = scenarios.len();

    let baseline = engine(1, 1, KernelKind::Fast).run_full(&scenarios);
    let plan = ReshardPlan {
        steps: vec![
            ReshardStep { at_second: 400, assignment: (0..n).collect() },
            ReshardStep { at_second: 900, assignment: vec![0; n] },
        ],
    };
    for fanout in [1usize, 4] {
        let run = engine(1, fanout, KernelKind::Fast)
            .run_resharded(&scenarios, &plan)
            .expect("snapshot handoff decodes");
        for (i, entry) in manifest.iter().enumerate() {
            let a = snapshot_of(entry, &baseline.cases[i], &baseline.diagnoses[i]);
            let b = snapshot_of(entry, &run.cases[i], &run.diagnoses[i]);
            assert_eq!(
                serde_json::to_string_pretty(&a).unwrap(),
                serde_json::to_string_pretty(&b).unwrap(),
                "{}: 1->N->1 churn diverged (fanout {fanout})",
                entry.name
            );
        }
    }
}

/// Regression for the mid-stream ordering assumption: after an
/// assignment-reversing handoff, cases must still come back in global
/// instance-id order — outcome `i` belongs to scenario `i`, not to
/// whatever shard finished first.
#[test]
fn reversing_handoff_preserves_instance_id_order() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let n = scenarios.len();

    let plan = ReshardPlan::single(800, reversed(n, 4));
    let run =
        engine(4, 2, KernelKind::Fast).run_resharded(&scenarios, &plan).expect("handoff decodes");
    for (i, entry) in manifest.iter().enumerate() {
        assert_eq!(run.report.outcomes[i].instance, i);
        assert_eq!(
            run.report.outcomes[i].seed, entry.seed,
            "{}: outcome {i} carries the wrong scenario's seed after the reversing handoff",
            entry.name
        );
        assert_eq!(run.report.outcomes[i].kind, entry.kind);
    }
}

#[test]
#[should_panic(expected = "not strictly increasing")]
fn non_monotonic_plan_is_rejected() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(2).map(scenario_for).collect();
    let plan = ReshardPlan {
        steps: vec![
            ReshardStep { at_second: 500, assignment: vec![0, 1] },
            ReshardStep { at_second: 500, assignment: vec![1, 0] },
        ],
    };
    let _ = engine(2, 1, KernelKind::Fast).run_resharded(&scenarios, &plan);
}

#[test]
#[should_panic(expected = "assignment covers")]
fn wrong_assignment_length_is_rejected() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(2).map(scenario_for).collect();
    let plan = ReshardPlan::single(500, vec![0, 1, 0]);
    let _ = engine(2, 1, KernelKind::Fast).run_resharded(&scenarios, &plan);
}
