//! Repairing-module effects, verified through the simulator: throttling
//! and optimizing the pinpointed R-SQL must actually resolve the anomaly
//! — through the batch path and through the online replay path.

use pinsql::repair::{optimize_spec, suggest_actions, suggest_actions_observed, throttle_spec};
use pinsql::{PinSql, PinSqlConfig, RepairConfig};
use pinsql_dbsim::run_open_loop;
use pinsql_engine::replay_diagnose;
use pinsql_obs::{RecordingObserver, Stage};
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};

fn anomaly_mean(series: &[f64], cfg: &ScenarioConfig) -> f64 {
    let (lo, hi) = (cfg.anomaly_start as usize, cfg.anomaly_end as usize);
    series[lo..hi.min(series.len())].iter().sum::<f64>() / (hi - lo) as f64
}

#[test]
fn throttling_the_rsql_suppresses_the_anomaly() {
    let cfg = ScenarioConfig::default().with_seed(71);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let case = materialize(&scenario, 600);
    let d = PinSql::new(PinSqlConfig::default()).diagnose(
        &case.case,
        &case.window,
        &case.history,
        case.minutes_origin,
    );
    let rsql = &d.rsqls[0];
    assert!(case.truth.rsqls.contains(&rsql.id), "diagnosis correct for this seed");
    let spec = case.case.catalog.get(rsql.id).unwrap().specs[0];

    let original = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);
    let throttled_w = throttle_spec(&scenario.workload, spec, 0.02);
    let throttled = run_open_loop(&throttled_w, &scenario.sim, 0, cfg.window_s);

    let before = anomaly_mean(&original.metrics.active_session, &cfg);
    let after = anomaly_mean(&throttled.metrics.active_session, &cfg);
    assert!(
        after < before * 0.3,
        "throttling the root cause must deflate the session: {before:.1} -> {after:.1}"
    );
}

#[test]
fn optimizing_the_rsql_resolves_without_losing_traffic() {
    let cfg = ScenarioConfig::default().with_seed(73);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let case = materialize(&scenario, 600);
    let d = PinSql::new(PinSqlConfig::default()).diagnose(
        &case.case,
        &case.window,
        &case.history,
        case.minutes_origin,
    );
    let rsql = &d.rsqls[0];
    assert!(case.truth.rsqls.contains(&rsql.id), "diagnosis correct for this seed");
    let spec = case.case.catalog.get(rsql.id).unwrap().specs[0];

    let original = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);
    let optimized_w = optimize_spec(&scenario.workload, spec);
    let optimized = run_open_loop(&optimized_w, &scenario.sim, 0, cfg.window_s);

    let before = anomaly_mean(&original.metrics.active_session, &cfg);
    let after = anomaly_mean(&optimized.metrics.active_session, &cfg);
    assert!(
        after < before * 0.3,
        "optimizing the root cause must deflate the session: {before:.1} -> {after:.1}"
    );
    // Unlike throttling, the statement still runs at full rate.
    let count = |log: &[pinsql_dbsim::QueryRecord]| {
        log.iter().filter(|r| r.spec == spec).count() as f64
    };
    let executed_before = count(&original.log);
    let executed_after = count(&optimized.log);
    assert!(
        executed_after > executed_before * 0.8,
        "optimization must not drop traffic: {executed_before} -> {executed_after}"
    );
}

#[test]
fn online_replay_drives_the_same_repair_as_batch() {
    // The production loop suggests repairs from *online* diagnoses, not
    // batch ones. The replay-equivalence contract says both paths must
    // land on the same actions; this pins it through `replay_diagnose`,
    // and pins that observing the repair stage changes nothing.
    let cfg = ScenarioConfig::default().with_seed(71);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::PoorSql);
    let repair_cfg = RepairConfig::default();

    let batch = materialize(&scenario, 600);
    let batch_d = PinSql::new(PinSqlConfig::default()).diagnose(
        &batch.case,
        &batch.window,
        &batch.history,
        batch.minutes_origin,
    );
    let batch_actions =
        suggest_actions(&batch_d, &batch.case, &batch.window, &batch.anomaly_type, &repair_cfg);

    let (lc, d) = replay_diagnose(&scenario, 600, &PinSqlConfig::default());
    let online_actions = suggest_actions(&d, &lc.case, &lc.window, &lc.anomaly_type, &repair_cfg);
    assert_eq!(online_actions, batch_actions, "online replay must repair like batch");

    // Observed suggestion: identical output, one recorded repair span.
    let obs = RecordingObserver::new();
    let observed =
        suggest_actions_observed(&d, &lc.case, &lc.window, &lc.anomaly_type, &repair_cfg, &obs);
    assert_eq!(observed, online_actions);
    assert_eq!(obs.registry().span_hist(Stage::Repair).count(), 1);

    // The online diagnosis pinpoints the injected root cause, and
    // throttling it resolves the anomaly — same effect bar as the batch
    // test above, driven entirely from the online path.
    let rsql = &d.rsqls[0];
    assert!(lc.truth.rsqls.contains(&rsql.id), "online diagnosis correct for this seed");
    let spec = lc.case.catalog.get(rsql.id).unwrap().specs[0];
    let original = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);
    let throttled_w = throttle_spec(&scenario.workload, spec, 0.02);
    let throttled = run_open_loop(&throttled_w, &scenario.sim, 0, cfg.window_s);
    let before = anomaly_mean(&original.metrics.active_session, &cfg);
    let after = anomaly_mean(&throttled.metrics.active_session, &cfg);
    assert!(
        after < before * 0.3,
        "throttling the online-pinpointed root cause must deflate: {before:.1} -> {after:.1}"
    );
}

#[test]
fn autoscale_relieves_cpu_pressure() {
    let cfg = ScenarioConfig::default().with_seed(75);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, AnomalyKind::BusinessSpike);
    let original = run_open_loop(&scenario.workload, &scenario.sim, 0, cfg.window_s);
    // AutoScale: quadruple the cores (the business wants the traffic).
    let mut scaled_sim = scenario.sim.clone();
    scaled_sim.cores *= 4.0;
    let scaled = run_open_loop(&scenario.workload, &scaled_sim, 0, cfg.window_s);
    let before = anomaly_mean(&original.metrics.active_session, &cfg);
    let after = anomaly_mean(&scaled.metrics.active_session, &cfg);
    assert!(
        after < before * 0.5,
        "scaling out must absorb the legitimate spike: {before:.1} -> {after:.1}"
    );
    // And throughput goes up, not down.
    let qps_before: f64 = original.metrics.qps.iter().sum();
    let qps_after: f64 = scaled.metrics.qps.iter().sum();
    assert!(qps_after >= qps_before * 0.95);
}
