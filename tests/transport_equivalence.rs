//! Transport equivalence: the socketed ingest path is behaviorally
//! invisible.
//!
//! All 16 manifest scenarios stream through the real cross-process leg —
//! a [`SourcePlan`] over materialized per-instance event streams, the
//! in-memory loopback [`ByteConn`], and an [`IngestSink`] hosting a
//! hollow [`FleetDaemon`] — across shards {1, 2, 4} × both detector
//! kernels. Every case's `Snapshot` JSON must match the uninterrupted
//! batch pipeline **byte-for-byte**: framing, batching, credit-driven
//! folds, and Advance watermarks leave no trace in the diagnosis.
//!
//! On top of the clean path the suite pins the fault-injection leg (a
//! mid-frame cut inside the anomaly window, resumed on a second
//! connection with replay — still byte-identical), the `std::net` TCP
//! transport against the same references, and the region server's
//! rollup merge over many agents' `PCTL` health queries.

mod common;

use common::{
    assert_fleet_matches_batch_at, batch_reference_jsons, drive_loopback, golden_fleet_config,
    load_manifest, scenario_for, MatrixPoint,
};
use pinsql::TransportPolicy;
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{
    pipe_pair, plan_frames, recv_hello, serve_agent, EventFrame, FleetDaemon, FleetEngine,
    FleetRun, IngestSink, RegionServer, SourcePlan, TcpConn, TransportError,
};
use pinsql_scenario::{materialize_events, Scenario};

/// Advance cadence (event-time seconds) the suites stream under.
const ADVANCE_EVERY_S: i64 = 60;

/// The transport axis: shards × kernels. Fanout and the window-cut path
/// are orthogonal to the wire and pinned by the default matrix suites.
fn transport_points() -> Vec<MatrixPoint> {
    let mut points = Vec::new();
    for shards in [1usize, 2, 4] {
        for kernel in [KernelKind::Fast, KernelKind::Reference] {
            points.push(MatrixPoint { shards, fanout: 1, kernel, cut: CutKind::Incremental });
        }
    }
    points
}

/// Streams `scenarios` through one loopback connection into a hollow
/// daemon under `p`'s config and returns the finished run.
fn loopback_run(p: MatrixPoint, scenarios: &[Scenario]) -> FleetRun {
    let streams: Vec<_> = scenarios.iter().map(|s| materialize_events(s, None)).collect();
    let policy = TransportPolicy::default();
    let mut plan = SourcePlan::new(plan_frames(&streams, &policy, ADVANCE_EVERY_S));
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(golden_fleet_config(p), scenarios), policy);

    let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, None);
    src.expect("source completes");
    agent.expect("agent sees a clean close");
    assert!(plan.finished(), "every frame sent and acked");
    assert!(sink.fin_received(), "the stream declared itself complete");
    assert_eq!(plan.stats.events_sent, streams.iter().map(Vec::len).sum::<usize>() as u64);
    assert!(!plan.stats.watermark_regressed, "sink watermarks are monotone");
    sink.finish()
}

#[test]
fn socketed_loopback_run_matches_batch_on_every_golden_case() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let batch_jsons = batch_reference_jsons(&manifest);

    assert_fleet_matches_batch_at(
        &transport_points(),
        &manifest,
        &scenarios,
        &batch_jsons,
        "loopback transport run",
        |p, sc| loopback_run(p, sc),
    );
}

/// The crash drill: the source→sink stream tears *mid-frame* somewhere
/// inside the anomaly window; a second connection resumes from the
/// sink's `Hello`, replays the unacked window, and the finished run is
/// still byte-identical on every golden case.
#[test]
fn mid_stream_reconnect_replays_and_stays_byte_identical() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let batch_jsons = batch_reference_jsons(&manifest);
    let p = MatrixPoint {
        shards: 2,
        fanout: 1,
        kernel: KernelKind::Fast,
        cut: CutKind::Incremental,
    };

    let streams: Vec<_> = scenarios.iter().map(|s| materialize_events(s, None)).collect();
    let policy = TransportPolicy::default();
    let frames = plan_frames(&streams, &policy, ADVANCE_EVERY_S);

    // Cut deep inside the plan — past the anomaly onset, mid-frame: half
    // the framed bytes plus two, which always lands inside a length
    // prefix or a body.
    let framed_bytes: usize = frames.iter().map(|f| 4 + f.to_bytes().len()).sum();
    let cut_at = framed_bytes / 2 + 2;

    let mut plan = SourcePlan::new(frames);
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(golden_fleet_config(p), &scenarios), policy);

    let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, Some(cut_at));
    assert!(src.is_err(), "the source must notice the dead stream");
    match agent {
        // The usual shape: the cut lands mid-frame and the agent reports
        // the torn read. (A boundary cut shows as a clean close instead.)
        Err(TransportError::Torn { got, want }) => assert!(got < want),
        Ok(()) => {}
        Err(other) => panic!("agent died with an unexpected error: {other}"),
    }
    assert!(!plan.finished(), "the cut left unsent or unacked frames");

    // Second connection: clean pipe, same plan, same sink.
    let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, None);
    src.expect("resumed source completes");
    agent.expect("agent sees a clean close after resume");
    assert!(plan.finished());
    assert_eq!(plan.stats.resumes, 1, "exactly one reconnect resume");
    assert!(sink.fin_received());

    let out = sink.finish();
    for (i, entry) in manifest.iter().enumerate() {
        common::assert_case_matches_batch(
            entry,
            &batch_jsons[i],
            &out.cases[i],
            &out.diagnoses[i],
            "reconnected transport run",
        );
    }
}

/// The deployment transport: the same protocol over real `std::net`
/// sockets. A smoke subset keeps the suite fast — the full matrix is
/// pinned over the loopback, which shares every code path above the
/// [`pinsql_engine::ByteConn`] seam.
#[test]
fn tcp_transport_smoke_matches_run_full() {
    let manifest = load_manifest();
    let entries: Vec<_> = manifest.into_iter().take(4).collect();
    let scenarios: Vec<_> = entries.iter().map(scenario_for).collect();
    let p = MatrixPoint {
        shards: 2,
        fanout: 1,
        kernel: KernelKind::Fast,
        cut: CutKind::Incremental,
    };
    let cfg = golden_fleet_config(p);

    let streams: Vec<_> = scenarios.iter().map(|s| materialize_events(s, None)).collect();
    let policy = TransportPolicy::default();
    let mut plan = SourcePlan::new(plan_frames(&streams, &policy, ADVANCE_EVERY_S));

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");

    let wired = std::thread::scope(|s| {
        let agent = s.spawn(|| {
            let (stream, _) = listener.accept().expect("accept");
            let mut conn = TcpConn::new(stream, policy.max_frame_bytes);
            let mut sink =
                IngestSink::new(FleetDaemon::spawn_hollow(cfg.clone(), &scenarios), policy);
            serve_agent(&mut conn, &mut sink).expect("agent serves to a clean close");
            assert!(sink.fin_received());
            sink.finish()
        });
        let mut conn = TcpConn::connect(addr, policy.max_frame_bytes).expect("connect");
        pinsql_engine::run_source(&mut conn, &mut plan).expect("source completes over TCP");
        drop(conn);
        agent.join().expect("agent thread")
    });
    assert!(plan.finished());

    let direct = FleetEngine::new(cfg).run_full(&scenarios);
    for (i, entry) in entries.iter().enumerate() {
        let wired_json = serde_json::to_string_pretty(&common::snapshot_of(
            entry,
            &wired.cases[i],
            &wired.diagnoses[i],
        ))
        .expect("serialize");
        let direct_json = serde_json::to_string_pretty(&common::snapshot_of(
            entry,
            &direct.cases[i],
            &direct.diagnoses[i],
        ))
        .expect("serialize");
        assert_eq!(wired_json, direct_json, "{}: TCP run diverged from run_full", entry.name);
    }
}

/// The region layer: many agents, one merged rollup tree. Each agent
/// hosts a slice of the fleet; the region server polls each over the
/// `PCTL` plane of the same connection the ingest wire uses, and the
/// merged tree re-aggregates exactly.
#[test]
fn region_server_merges_rollups_from_many_agents() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().map(scenario_for).collect();
    let policy = TransportPolicy::default();
    let mut region = RegionServer::new();

    let mut total_events = 0u64;
    for slice in scenarios.chunks(8) {
        let streams: Vec<_> = slice.iter().map(|s| materialize_events(s, None)).collect();
        let mut plan = SourcePlan::new(plan_frames(&streams, &policy, ADVANCE_EVERY_S));
        let cfg = golden_fleet_config(MatrixPoint {
            shards: 2,
            fanout: 1,
            kernel: KernelKind::Fast,
            cut: CutKind::Incremental,
        });
        let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(cfg, slice), policy);

        // Stream the slice in, then poll health on a fresh connection.
        let (src, agent) = drive_loopback(&mut sink, &mut plan, policy.max_frame_bytes, None);
        src.expect("source completes");
        agent.expect("agent clean close");

        let (mut client, mut server) = pipe_pair(policy.max_frame_bytes);
        std::thread::scope(|s| {
            let agent = s.spawn(|| {
                let _ = serve_agent(&mut server, &mut sink);
            });
            let (next_seq, _credits, _watermark) =
                recv_hello(&mut client).expect("agent leads with its hello");
            assert!(next_seq > 1, "the agent remembers the applied stream");
            let rollup = region.poll_agent(&mut client).expect("health query over PCTL");
            assert_eq!(rollup.instances() as usize, slice.len());
            total_events += rollup.total.events_total;
            drop(client);
            agent.join().expect("agent thread");
        });
    }

    assert_eq!(region.agents(), 2, "one rollup per agent");
    let tree = region.tree();
    assert_eq!(tree.instances() as usize, scenarios.len(), "merge covers the whole fleet");
    assert!(tree.is_consistent(), "merged regions re-aggregate to the merged total");
    assert_eq!(tree.total.events_total, total_events, "merge is an exact sum");
}

/// Protocol-role and sequence discipline over raw frames: a sink-minted
/// frame sent at the sink, a sequence gap, and a credit overrun are each
/// refused with the typed error — and the daemon survives all three.
#[test]
fn protocol_violations_are_typed_and_survivable() {
    let manifest = load_manifest();
    let scenarios: Vec<_> = manifest.iter().take(1).map(scenario_for).collect();
    let cfg = golden_fleet_config(MatrixPoint {
        shards: 1,
        fanout: 1,
        kernel: KernelKind::Fast,
        cut: CutKind::Incremental,
    });
    let policy = TransportPolicy { queue_capacity: 64, batch_events: 16, ..TransportPolicy::default() };
    let mut sink = IngestSink::new(FleetDaemon::spawn_hollow(cfg, &scenarios), policy);
    let tick = |second: i64| pinsql_dbsim::TelemetryEvent::Tick { second };

    // Role violation: an Ack arriving at the sink.
    let ack = EventFrame::Ack { seq: 1, credits: 1, watermark: 0 }.to_bytes();
    let err = sink.handle_event_frame(&ack).expect_err("sink-minted frame refused");
    assert!(format!("{err}").contains("role"), "typed role error, got {err}");

    // Sequence gap: seq 2 before seq 1.
    let gap = EventFrame::Batch { seq: 2, instance: 0, events: vec![tick(0)] }.to_bytes();
    let err = sink.handle_event_frame(&gap).expect_err("gap refused");
    assert!(format!("{err}").contains("gap"), "typed gap error, got {err}");

    // Credit overrun: one batch bigger than the whole queue.
    let flood = EventFrame::Batch {
        seq: 1,
        instance: 0,
        events: (0..65).map(|_| tick(0)).collect(),
    }
    .to_bytes();
    let err = sink.handle_event_frame(&flood).expect_err("overrun refused");
    assert!(format!("{err}").contains("overruns"), "typed credit error, got {err}");

    // The sink survives: the real seq 1 still applies and acks.
    let ok = EventFrame::Batch { seq: 1, instance: 0, events: vec![tick(0)] }.to_bytes();
    let reply = sink.handle_event_frame(&ok).expect("valid frame still lands");
    match EventFrame::from_bytes(&reply).expect("well-formed ack") {
        EventFrame::Ack { seq, .. } => assert_eq!(seq, 1),
        other => panic!("expected an ack, got {other:?}"),
    }
}
