//! Replay equivalence: the online engine reproduces batch diagnoses
//! bit-for-bit on the full golden corpus.
//!
//! Every manifest entry's scenario is replayed event-by-event through
//! `pinsql_engine::replay_diagnose` — the incremental collector, the
//! online detector bank, and the case-close snapshot — at diagnosis
//! parallelism {1, 4} × detector kernel {fast, reference} × window-cut
//! path {incremental, reference}, and the resulting `Snapshot` JSON is
//! compared **byte-for-byte** against the batch pipeline's output (and
//! against the stored `tests/golden/<name>.json` when one exists). Scores
//! are serialized as `f64` bit patterns, so a single ULP of drift
//! anywhere in the online path fails this suite.

mod common;

use common::{
    assert_case_matches_batch, batch_reference_jsons, golden_dir, load_manifest, scenario_for,
    GOLDEN_DELTA_S,
};
use pinsql::PinSqlConfig;
use pinsql_detect::{CutKind, KernelKind};
use pinsql_engine::{replay_diagnose, replay_diagnose_with_kernel};

#[test]
fn online_replay_matches_batch_on_every_golden_case() {
    let manifest = load_manifest();
    let batch_jsons = batch_reference_jsons(&manifest);

    for (entry, batch_json) in manifest.iter().zip(&batch_jsons) {
        let scenario = scenario_for(entry);
        for parallelism in [1usize, 4] {
            for cut in [CutKind::Incremental, CutKind::Reference] {
                let cfg =
                    PinSqlConfig::default().with_parallelism(parallelism).with_cut(cut);
                let (lc, d) = replay_diagnose(&scenario, GOLDEN_DELTA_S, &cfg);
                assert_case_matches_batch(
                    entry,
                    batch_json,
                    &lc,
                    &d,
                    &format!(
                        "online replay (parallelism {parallelism}, cut {})",
                        cut.label()
                    ),
                );

                for kernel in [KernelKind::Fast, KernelKind::Reference] {
                    let (lc, d) =
                        replay_diagnose_with_kernel(&scenario, GOLDEN_DELTA_S, &cfg, kernel);
                    assert_case_matches_batch(
                        entry,
                        batch_json,
                        &lc,
                        &d,
                        &format!(
                            "online replay (parallelism {parallelism}, kernel {}, cut {})",
                            kernel.label(),
                            cut.label()
                        ),
                    );
                }
            }
        }

        // When a golden file is already pinned, the online path must match
        // it byte-for-byte too (guards against batch and online drifting
        // together within one run).
        let path = golden_dir().join(format!("{}.json", entry.name));
        if let Ok(stored) = std::fs::read_to_string(&path) {
            assert_eq!(
                stored, *batch_json,
                "{}: stored golden snapshot disagrees with this build",
                entry.name
            );
        }
    }
}
