//! Golden-diagnosis regression corpus.
//!
//! Sixteen seeded cases (four per anomaly kind, listed in
//! `tests/golden/manifest.json`) are materialized and diagnosed; the
//! rank-relevant output is snapshotted as JSON and compared byte-for-byte
//! against `tests/golden/<name>.json`. Each case is additionally diagnosed
//! at parallelism 1 and 4 and the two snapshots must be identical — the
//! determinism contract that keeps golden files meaningful on any machine.
//!
//! Missing snapshots are written on first run (self-blessing); set
//! `PINSQL_BLESS=1` to regenerate all of them after an intentional
//! behaviour change. See `tests/golden/README.md`.
//!
//! The same corpus also pins the online engine: `online_equivalence.rs`
//! replays every entry through the event-driven path and byte-compares
//! against these snapshots.

mod common;

use common::{batch_snapshot, golden_dir, load_manifest};

#[test]
fn golden_corpus_matches_and_is_parallelism_stable() {
    let dir = golden_dir();
    let manifest = load_manifest();

    let bless = std::env::var_os("PINSQL_BLESS").is_some();
    let mut mismatches = Vec::new();
    for entry in &manifest {
        let (serial, d) = batch_snapshot(entry, 1);
        let (parallel, _) = batch_snapshot(entry, 4);
        let serial_json =
            serde_json::to_string_pretty(&serial).expect("serialize snapshot");
        let parallel_json =
            serde_json::to_string_pretty(&parallel).expect("serialize snapshot");
        assert_eq!(
            serial_json, parallel_json,
            "{}: diagnosis differs between parallelism 1 and 4",
            entry.name
        );
        // Sanity independent of the stored snapshot: an injected anomaly
        // produces a non-empty ranking.
        assert!(!d.rsqls.is_empty(), "{}: empty R-SQL ranking", entry.name);
        assert!(!d.hsqls.is_empty(), "{}: empty H-SQL ranking", entry.name);

        let path = dir.join(format!("{}.json", entry.name));
        if bless || !path.exists() {
            std::fs::write(&path, &serial_json).expect("write golden snapshot");
            continue;
        }
        let stored = std::fs::read_to_string(&path).expect("read golden snapshot");
        if stored != serial_json {
            mismatches.push(entry.name.clone());
        }
    }
    assert!(
        mismatches.is_empty(),
        "diagnosis drifted from golden snapshots: {mismatches:?} — if the \
         change is intentional, regenerate with PINSQL_BLESS=1 and review \
         the diff"
    );
}
