//! Golden-diagnosis regression corpus.
//!
//! Sixteen seeded cases (four per anomaly kind, listed in
//! `tests/golden/manifest.json`) are materialized and diagnosed; the
//! rank-relevant output is snapshotted as JSON and compared byte-for-byte
//! against `tests/golden/<name>.json`. Each case is additionally diagnosed
//! at parallelism 1 and 4 and the two snapshots must be identical — the
//! determinism contract that keeps golden files meaningful on any machine.
//!
//! Missing snapshots are written on first run (self-blessing); set
//! `PINSQL_BLESS=1` to regenerate all of them after an intentional
//! behaviour change. See `tests/golden/README.md`.

use pinsql::{Diagnosis, PinSql, PinSqlConfig};
use pinsql_scenario::{generate_base, inject, materialize, AnomalyKind, ScenarioConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

#[derive(Debug, Deserialize)]
struct ManifestEntry {
    name: String,
    kind: String,
    seed: u64,
}

/// The rank-relevant, timing-free view of one diagnosed case.
#[derive(Debug, Serialize)]
struct Snapshot {
    name: String,
    kind: String,
    seed: u64,
    detected: bool,
    anomaly_type: String,
    window: (i64, i64, i64),
    truth_rsqls: Vec<u64>,
    truth_hsqls: Vec<u64>,
    n_clusters: usize,
    selected_clusters: usize,
    n_verified: usize,
    n_reported: usize,
    /// Top-ranked templates as `(id, label, score bits as hex)` — bit-exact
    /// scores keep the comparison byte-stable without decimal formatting
    /// ambiguity.
    top_rsqls: Vec<(u64, String, String)>,
    top_hsqls: Vec<(u64, String, String)>,
}

fn top5(list: &[pinsql::RankedTemplate]) -> Vec<(u64, String, String)> {
    list.iter()
        .take(5)
        .map(|r| (r.id.0, r.label.clone(), format!("{:016x}", r.score.to_bits())))
        .collect()
}

fn kind_of(s: &str) -> AnomalyKind {
    AnomalyKind::ALL
        .into_iter()
        .find(|k| k.label() == s)
        .unwrap_or_else(|| panic!("unknown kind in manifest: {s}"))
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn snapshot(entry: &ManifestEntry, parallelism: usize) -> (Snapshot, Diagnosis) {
    let cfg = ScenarioConfig::default().with_seed(entry.seed);
    let base = generate_base(&cfg);
    let scenario = inject(&base, &cfg, kind_of(&entry.kind));
    let lc = materialize(&scenario, 600);
    let d = PinSql::new(PinSqlConfig::default().with_parallelism(parallelism)).diagnose(
        &lc.case,
        &lc.window,
        &lc.history,
        lc.minutes_origin,
    );
    let snap = Snapshot {
        name: entry.name.clone(),
        kind: entry.kind.clone(),
        seed: entry.seed,
        detected: lc.detected,
        anomaly_type: lc.anomaly_type.clone(),
        window: (lc.window.ts(), lc.window.anomaly_start, lc.window.anomaly_end),
        truth_rsqls: lc.truth.rsqls.iter().map(|id| id.0).collect(),
        truth_hsqls: lc.truth.hsqls.iter().map(|id| id.0).collect(),
        n_clusters: d.n_clusters,
        selected_clusters: d.selected_clusters,
        n_verified: d.n_verified,
        n_reported: d.reported_rsqls.len(),
        top_rsqls: top5(&d.rsqls),
        top_hsqls: top5(&d.hsqls),
    };
    (snap, d)
}

#[test]
fn golden_corpus_matches_and_is_parallelism_stable() {
    let dir = golden_dir();
    let manifest: Vec<ManifestEntry> = serde_json::from_str(
        &std::fs::read_to_string(dir.join("manifest.json")).expect("read manifest"),
    )
    .expect("parse manifest");
    assert_eq!(manifest.len(), 16, "four cases per anomaly kind");
    for kind in AnomalyKind::ALL {
        assert_eq!(
            manifest.iter().filter(|e| e.kind == kind.label()).count(),
            4,
            "manifest must hold four {} cases",
            kind.label()
        );
    }

    let bless = std::env::var_os("PINSQL_BLESS").is_some();
    let mut mismatches = Vec::new();
    for entry in &manifest {
        let (serial, d) = snapshot(entry, 1);
        let (parallel, _) = snapshot(entry, 4);
        let serial_json =
            serde_json::to_string_pretty(&serial).expect("serialize snapshot");
        let parallel_json =
            serde_json::to_string_pretty(&parallel).expect("serialize snapshot");
        assert_eq!(
            serial_json, parallel_json,
            "{}: diagnosis differs between parallelism 1 and 4",
            entry.name
        );
        // Sanity independent of the stored snapshot: an injected anomaly
        // produces a non-empty ranking.
        assert!(!d.rsqls.is_empty(), "{}: empty R-SQL ranking", entry.name);
        assert!(!d.hsqls.is_empty(), "{}: empty H-SQL ranking", entry.name);

        let path = dir.join(format!("{}.json", entry.name));
        if bless || !path.exists() {
            std::fs::write(&path, &serial_json).expect("write golden snapshot");
            continue;
        }
        let stored = std::fs::read_to_string(&path).expect("read golden snapshot");
        if stored != serial_json {
            mismatches.push(entry.name.clone());
        }
    }
    assert!(
        mismatches.is_empty(),
        "diagnosis drifted from golden snapshots: {mismatches:?} — if the \
         change is intentional, regenerate with PINSQL_BLESS=1 and review \
         the diff"
    );
}
